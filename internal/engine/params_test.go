package engine

import (
	"encoding/json"
	"strings"
	"testing"
)

// defaultsProbe is a scenario whose defaults are non-zero in every
// dimension the zero-folding bug used to corrupt: it just echoes its
// effective params as metrics.
func defaultsProbe(t *testing.T) (*Registry, Params) {
	t.Helper()
	defaults := Params{P0: 0.5, Beta0: 0.25, Mode: "m", Seed: 9, N: 100, Horizon: 10, Rate: 0.4, GST: 7}
	reg := NewRegistry()
	reg.MustRegister(NewScenario("probe", "echoes effective params", defaults,
		func(p Params) (Result, error) {
			return Result{Metrics: []Metric{
				{Name: "rate", Value: p.Rate},
				{Name: "gst", Value: float64(p.GST)},
				{Name: "p0", Value: p.P0},
				{Name: "beta0", Value: p.Beta0},
			}}, nil
		}))
	return reg, defaults
}

// TestWithDefaultsKeepsExplicitZeros is the headline regression: an
// explicit zero-valued parameter survives defaulting, while an unset zero
// still takes the scenario default.
func TestWithDefaultsKeepsExplicitZeros(t *testing.T) {
	_, d := defaultsProbe(t)

	unset := Params{}.WithDefaults(d)
	if unset.Rate != d.Rate || unset.GST != d.GST || unset.P0 != d.P0 || unset.Beta0 != d.Beta0 {
		t.Fatalf("unset params did not take defaults: %+v", unset)
	}

	explicit := Params{}.MarkExplicit(FieldRate, FieldGST, FieldP0, FieldBeta0).WithDefaults(d)
	if explicit.Rate != 0 || explicit.GST != 0 || explicit.P0 != 0 || explicit.Beta0 != 0 {
		t.Fatalf("explicit zeros were rewritten to defaults: %+v", explicit)
	}
	if explicit.Mode != d.Mode || explicit.Seed != d.Seed || explicit.N != d.N {
		t.Fatalf("unmarked fields should still default: %+v", explicit)
	}
	if explicit.Explicit != FieldAll {
		t.Fatalf("WithDefaults must produce a fully specified record (FieldAll), got %b", explicit.Explicit)
	}
}

// TestParamsJSONRoundTripPreservesExplicitZeros pins the wire symmetry:
// a fully defaulted record containing an explicit zero serializes that
// zero and decodes back to the identical effective run — re-submitting a
// result's params reproduces the result instead of silently reverting
// zeros to scenario defaults. Sparse requests stay sparse.
func TestParamsJSONRoundTripPreservesExplicitZeros(t *testing.T) {
	_, d := defaultsProbe(t)
	full := Params{}.MarkExplicit(FieldRate, FieldGST).WithDefaults(d)
	if full.Rate != 0 || full.GST != 0 {
		t.Fatalf("setup: explicit zeros lost before the round trip: %+v", full)
	}
	blob, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"rate":0`) || !strings.Contains(string(blob), `"gst":0`) {
		t.Fatalf("fully specified record omitted its explicit zeros: %s", blob)
	}
	back, err := DecodeParams(blob)
	if err != nil {
		t.Fatal(err)
	}
	if again := back.WithDefaults(d); again != full {
		t.Fatalf("round trip changed the effective run:\n  sent: %+v\n  got:  %+v", full, again)
	}

	// A sparse request marshals sparsely: unset fields stay absent so the
	// receiving registry can default them.
	sparse, err := json.Marshal(Params{N: 60})
	if err != nil {
		t.Fatal(err)
	}
	if string(sparse) != `{"n":60}` {
		t.Fatalf("sparse params marshalled as %s, want {\"n\":60}", sparse)
	}
}

// TestSweepBaselineCellKeepsExplicitZero sweeps rate=[0, 0.1] (and
// gst=[0, 4]) over a scenario whose defaults are non-zero: the baseline
// cell must run with rate exactly 0 and gst exactly 0, not with the
// defaults — the bug that silently corrupted the first cell of every
// drop-rate/GST sweep.
func TestSweepBaselineCellKeepsExplicitZero(t *testing.T) {
	reg, d := defaultsProbe(t)
	grid, err := ParseGrid("probe", "rate=0,0.1; gst=0,4")
	if err != nil {
		t.Fatal(err)
	}
	results := SweepGrid(grid, Options{Workers: 1, Registry: reg})
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("want 4 cells, got %d", len(results))
	}
	wantRate := []float64{0, 0, 0.1, 0.1}
	wantGST := []float64{0, 4, 0, 4}
	for i, r := range results {
		rate, _ := r.Metric("rate")
		gst, _ := r.Metric("gst")
		if rate != wantRate[i] || gst != wantGST[i] {
			t.Errorf("cell %d ran with rate=%v gst=%v, want rate=%v gst=%v", i, rate, gst, wantRate[i], wantGST[i])
		}
		if r.Params.Rate != wantRate[i] || float64(r.Params.GST) != wantGST[i] {
			t.Errorf("cell %d recorded params rate=%v gst=%d, want rate=%v gst=%v", i, r.Params.Rate, r.Params.GST, wantRate[i], wantGST[i])
		}
		// Dimensions the grid does not list still take defaults.
		if p0, _ := r.Metric("p0"); p0 != d.P0 {
			t.Errorf("cell %d: unlisted p0 = %v, want default %v", i, p0, d.P0)
		}
	}
}

// TestSimDropsExplicitZeroRateRunsLossless is the full-protocol
// acceptance check: in a sim/drops sweep over rate=[0, 0.3], the explicit
// rate=0 cell simulates with drop rate exactly 0 — zero delayed
// deliveries — rather than whatever the scenario default is.
func TestSimDropsExplicitZeroRateRunsLossless(t *testing.T) {
	grid, err := ParseGrid(ScenarioSimDrops, "rate=0,0.3")
	if err != nil {
		t.Fatal(err)
	}
	grid.N = 64
	grid.Horizons = []int{4}
	results := SweepGrid(grid, Options{Workers: 1})
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	if results[0].Params.Rate != 0 {
		t.Fatalf("baseline cell params rate = %v, want 0", results[0].Params.Rate)
	}
	if delayed, _ := results[0].Metric("msgs_delayed"); delayed != 0 {
		t.Fatalf("explicit rate=0 cell delayed %v messages, want 0 (ran with a non-zero rate?)", delayed)
	}
	if delayed, _ := results[1].Metric("msgs_delayed"); delayed == 0 {
		t.Fatal("rate=0.3 cell delayed no messages; the sweep dimension is not reaching the simulator")
	}
}

// TestDecodeParamsMarksPresence pins the serving-layer decoder: keys
// present in the JSON document are explicit, absent keys are not.
func TestDecodeParamsMarksPresence(t *testing.T) {
	p, err := DecodeParams([]byte(`{"rate": 0, "gst": 0, "n": 50}`))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Field{FieldRate, FieldGST, FieldN} {
		if !p.IsExplicit(f) {
			t.Errorf("field %b present in document but not marked explicit", f)
		}
	}
	for _, f := range []Field{FieldP0, FieldBeta0, FieldMode, FieldSeed, FieldHorizon, FieldSample} {
		if p.IsExplicit(f) {
			t.Errorf("field %b absent from document but marked explicit", f)
		}
	}
	if _, err := DecodeParams([]byte(`{"rate": "no"}`)); err == nil {
		t.Fatal("DecodeParams accepted a mistyped field")
	}
}

// TestFieldForKeyCoversEveryGridKey keeps the flag/grid key space and the
// presence bits in sync.
func TestFieldForKeyCoversEveryGridKey(t *testing.T) {
	for _, key := range []string{"p0", "beta0", "mode", "seed", "horizon", "rate", "gst", "n", "sample"} {
		if _, ok := FieldForKey(key); !ok {
			t.Errorf("FieldForKey(%q) unknown", key)
		}
	}
	if _, ok := FieldForKey("workers"); ok {
		t.Error("FieldForKey should not resolve non-parameter keys")
	}
}
