package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/behavior"
	"repro/internal/network"
	"repro/internal/sim"
)

// SimVariant selects the protocol simulator's internal layout and
// fork-choice engine for the view-cohort scenarios. The zero value is the
// production configuration (cohort views, incremental proto-array); the
// other three corners are the test oracles — every variant produces
// bit-identical Results, which the warm-vs-cold equivalence suite asserts
// across the full 2x2 matrix.
type SimVariant struct {
	// PerValidatorViews runs one node per validator (the pre-refactor
	// oracle layout, O(n^2) per slot — small n only).
	PerValidatorViews bool
	// OracleForkChoice runs the map-based recompute-everything fork
	// choice instead of the proto-array.
	OracleForkChoice bool
}

// NewSimScenarioVariant builds one of the forkable protocol-simulator
// scenarios (sim/drops, sim/gst, sim/leak, sim/semiactive) running under
// the given variant, for registration in a custom Registry. ok = false for
// any other name. The Default registry holds the zero-variant instances.
func NewSimScenarioVariant(name string, v SimVariant) (Scenario, bool) {
	switch name {
	case ScenarioSimDrops:
		return &simForkScenario{
			name: name,
			desc: "Full-protocol link-outage robustness: synchronous 8-partition population under drop rate (rate=0 is the lossless baseline)",
			// sim/drops defaults rate to 0 (the lossless baseline) and
			// sim/gst defaults gst to 0 (heal immediately). Since
			// defaulting became set-aware (Params.Explicit), a zero
			// default is a choice, not a necessity: an explicit rate=0 or
			// gst=0 cell survives even against a non-zero default.
			defaults: Params{P0: 0.5, N: 1000, Horizon: 10, Seed: 1},
			variant:  v,
			runCold:  runSimDrops,
			forkFn:   forkSimDrops,
			runToFn:  runToSimDrops,
			resumeFn: resumeSimDrops,
		}, true
	case ScenarioSimGST:
		return &simForkScenario{
			name:     name,
			desc:     "Full-protocol partition heal: 50/50 split healing at the gst epoch (gst=0 is the no-partition baseline)",
			defaults: Params{P0: 0.5, N: 1000, Horizon: 16, Seed: 3},
			variant:  v,
			runCold:  runSimGST,
			forkFn:   forkSimGST,
			runToFn:  runToSimGST,
			resumeFn: resumeSimGST,
		}, true
	case ScenarioSimLeak:
		return &simForkScenario{
			name:     name,
			desc:     "Table 1 Scenario 5.1 at full protocol and full spec: lasting partition run to conflicting finalization (analytic anchor 4662 at p0=0.5)",
			defaults: Params{P0: 0.5, N: 10000, Horizon: 6000, Seed: 1},
			variant:  v,
			runCold:  runSimLeak,
			forkFn:   forkSimLeak,
			runToFn:  runToSimLeak,
			resumeFn: resumeSimLeak,
		}, true
	case ScenarioSimSemiActive:
		return &simForkScenario{
			name:     name,
			desc:     "Table 3 at full protocol: semi-active Byzantine validators accelerate the leak and finalize both branches (full spec)",
			defaults: Params{P0: 0.5, Beta0: 0.33, N: 10000, Horizon: 2000, Seed: 1},
			variant:  v,
			runCold:  runSimSemiActive,
			forkFn:   forkSimSemiActive,
			runToFn:  runToSimSemiActive,
			resumeFn: resumeSimSemiActive,
		}, true
	}
	return nil, false
}

// simForkScenario adapts a protocol-simulator scenario's cold runner plus
// its fork/extend/resume triple to Scenario, ContextRunner, and
// ForkableScenario. The cold path stays the straight-through runner —
// warm-started execution is a separate path whose equivalence the test
// suite enforces, not a recomposition the cold path depends on.
type simForkScenario struct {
	name, desc string
	defaults   Params
	variant    SimVariant
	runCold    func(ctx context.Context, p Params, v SimVariant) (Result, error)
	forkFn     func(p Params, v SimVariant) (key string, branch int, ok bool)
	runToFn    func(ctx context.Context, p Params, v SimVariant, from *Prefix, epoch int) (*Prefix, error)
	resumeFn   func(ctx context.Context, pre *Prefix, p Params, v SimVariant) (Result, error)
}

func (s *simForkScenario) Name() string        { return s.name }
func (s *simForkScenario) Description() string { return s.desc }
func (s *simForkScenario) Defaults() Params    { return s.defaults }

func (s *simForkScenario) Run(p Params) (Result, error) {
	return s.runCold(context.Background(), p, s.variant)
}

func (s *simForkScenario) RunContext(ctx context.Context, p Params) (Result, error) {
	return s.runCold(ctx, p, s.variant)
}

func (s *simForkScenario) Fork(p Params) (key string, branch int, ok bool) {
	return s.forkFn(p, s.variant)
}

func (s *simForkScenario) RunTo(ctx context.Context, p Params, from *Prefix, epoch int) (*Prefix, error) {
	return s.runToFn(ctx, p, s.variant, from, epoch)
}

func (s *simForkScenario) ResumeFrom(ctx context.Context, pre *Prefix, p Params) (Result, error) {
	return s.resumeFn(ctx, pre, p, s.variant)
}

// simCont hands a prefix's still-live simulation to exactly one claimant.
// After the spine snapshots at a branch epoch, the simulation it advanced
// is still positioned at that boundary; parking it on the published Prefix
// lets the NEXT hop (the spine's own extension, a rebuild, or a resuming
// cell) continue it directly instead of paying New + Restore. The
// snapshot contract makes this invisible to results: continuing a
// simulation past a snapshot is bit-identical to restoring the snapshot
// and running (sim.TestSnapshotRestoreDeterminism pins it).
type simCont struct {
	mu sync.Mutex
	s  *sim.Simulation
}

// claimCont atomically takes the live simulation off a prefix; nil when
// absent or already claimed. The loser of a race restores the snapshot.
func claimCont(pre *Prefix) *sim.Simulation {
	if pre == nil || pre.cont == nil {
		return nil
	}
	c := pre.cont.(*simCont)
	c.mu.Lock()
	s := c.s
	c.s = nil
	c.mu.Unlock()
	return s
}

// prefixSim positions a simulation at the checkpoint: claim the live
// continuation when available; otherwise build a simulation from cfg and
// give it the snapshot's state. With no prefix at all, a full cold
// simulation is built; with one, only a shell (sim.NewShell) is built,
// because the snapshot supplies the cohort state. How the state arrives
// depends on what the caller may do with it: a prefix the scheduler marked
// Owned is adopted (moved, zero-copy); a readOnly caller — a resume whose
// branch epoch equals its horizon, which only reads metrics off the
// checkpoint — attaches (aliases, zero-copy); everything else pays the
// defensive Restore clone.
func prefixSim(pre *Prefix, readOnly bool, cfg func() sim.Config) (*sim.Simulation, error) {
	if s := claimCont(pre); s != nil {
		return s, nil
	}
	if pre == nil {
		return sim.New(cfg())
	}
	s, err := sim.NewShell(cfg())
	if err != nil {
		return nil, err
	}
	switch {
	case pre.Owned:
		err = s.Adopt(pre.Snap)
	case readOnly:
		err = s.Attach(pre.Snap)
	default:
		err = s.Restore(pre.Snap)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// resumeReadOnly reports whether a resume has no epochs left to simulate —
// the prefix already reached the cell's horizon (branch == horizon, the
// shape of every horizon-sweep group) or concluded early — so the
// checkpoint only needs to be read, not continued.
func resumeReadOnly(pre *Prefix, p Params) bool {
	return pre.Done || pre.Epoch >= p.Horizon
}

// simPrefixKey canonically encodes the parameter dimensions that shape a
// sim scenario's pre-branch epochs. Horizon is always excluded (it is the
// sweep depth, exactly what prefix sharing amortizes); gst is excluded for
// the gst scenario (the prefix runs pre-heal, each cell heals at resume).
// Everything else is included even when a scenario ignores it (rate for
// gst/leak, mode everywhere) — including a no-op dimension only splits
// groups, excluding a live one would corrupt results.
func simPrefixKey(p Params, v SimVariant, withGST bool) string {
	key := fmt.Sprintf("p0=%v;beta0=%v;mode=%q;seed=%d;n=%d;sample=%d;rate=%v;views=%t;oracle=%t",
		p.P0, p.Beta0, p.Mode, p.Seed, p.N, p.Sample, p.Rate, v.PerValidatorViews, v.OracleForkChoice)
	if withGST {
		key += fmt.Sprintf(";gst=%d", p.GST)
	}
	return key
}

// --- sim/drops -------------------------------------------------------

// forkSimDrops shares prefixes across horizon sweeps: the branch is the
// cell's own horizon, so a shorter cell's full run doubles as a longer
// cell's prefix. No per-epoch trace to carry.
func forkSimDrops(p Params, v SimVariant) (string, int, bool) {
	if validateSimDrops(p) != nil {
		return "", 0, false
	}
	return simPrefixKey(p, v, true), p.Horizon, true
}

func runToSimDrops(ctx context.Context, p Params, v SimVariant, from *Prefix, epoch int) (*Prefix, error) {
	if from != nil && (from.Done || from.Epoch >= epoch) {
		return from, nil
	}
	s, err := prefixSim(from, false, func() sim.Config { return simDropsConfig(p, v) })
	if err != nil {
		return nil, err
	}
	fromEpoch := 0
	if from != nil {
		fromEpoch = from.Epoch
	}
	if err := runEpochsRangeContext(ctx, s, fromEpoch, epoch, nil); err != nil {
		return nil, err
	}
	return &Prefix{Snap: s.Snapshot(), Epoch: epoch, cont: &simCont{s: s}}, nil
}

func resumeSimDrops(ctx context.Context, pre *Prefix, p Params, v SimVariant) (Result, error) {
	s, err := prefixSim(pre, resumeReadOnly(pre, p), func() sim.Config { return simDropsConfig(p, v) })
	if err != nil {
		return Result{}, err
	}
	start := time.Now() //gasper:nondet wall-clock duration metadata only; never part of result identity
	if !pre.Done {
		if err := runEpochsRangeContext(ctx, s, pre.Epoch, p.Horizon, nil); err != nil {
			return Result{}, err
		}
	}
	return finishSimDrops(s, p, time.Since(start)), nil //gasper:nondet wall-clock duration metadata only; never part of result identity
}

// --- sim/gst ---------------------------------------------------------

// gstTrace carries the first safety violation observed during the
// pre-heal prefix (0 = none). A violation concludes the run, so it also
// marks the prefix Done.
type gstTrace struct {
	violation float64
}

// forkSimGST shares the pre-heal epochs across a gst sweep: every cell
// with the same population runs identically until its own heal epoch, so
// the branch is min(gst, horizon) and gst itself stays out of the key.
// The prefix simulates under network.FarFuture (held cross-partition
// traffic retained); each resume retargets the held band onto the cell's
// own heal slot.
func forkSimGST(p Params, v SimVariant) (string, int, bool) {
	if p.GST <= 0 {
		// gst=0 is the no-partition baseline (and gst<0 the cold path's
		// validation error) — nothing pre-heal to share.
		return "", 0, false
	}
	branch := p.GST
	if p.Horizon < branch {
		branch = p.Horizon
	}
	if branch <= 0 {
		return "", 0, false
	}
	return simPrefixKey(p, v, false), branch, true
}

func runToSimGST(ctx context.Context, p Params, v SimVariant, from *Prefix, epoch int) (*Prefix, error) {
	if from != nil && (from.Done || from.Epoch >= epoch) {
		return from, nil
	}
	s, err := prefixSim(from, false, func() sim.Config { return simGSTConfig(p, v, network.FarFuture) })
	if err != nil {
		return nil, err
	}
	var tr gstTrace
	fromEpoch := 0
	if from != nil {
		tr = from.Trace.(gstTrace)
		fromEpoch = from.Epoch
	}
	if err := runEpochsRangeContext(ctx, s, fromEpoch, epoch, gstObserver(s, &tr.violation)); err != nil {
		return nil, err
	}
	out := &Prefix{Snap: s.Snapshot(), Epoch: epoch, Trace: tr, cont: &simCont{s: s}}
	if tr.violation != 0 {
		out.Epoch, out.Done = int(tr.violation), true
	}
	return out, nil
}

func resumeSimGST(ctx context.Context, pre *Prefix, p Params, v SimVariant) (Result, error) {
	// The prefix runs under network.FarFuture; whichever way this cell
	// obtains the state — claiming the live simulation, adopting, or
	// restoring — the held cross-partition traffic is retargeted onto the
	// cell's own heal slot.
	var s *sim.Simulation
	if s = claimCont(pre); s != nil {
		s.SetGST(simGSTSlot(p))
	} else {
		var err error
		s, err = sim.NewShell(simGSTConfig(p, v, simGSTSlot(p)))
		if err != nil {
			return Result{}, err
		}
		switch {
		case pre.Owned:
			err = s.Adopt(pre.Snap)
		case resumeReadOnly(pre, p):
			// Nothing left to simulate: the heal never lands within this
			// cell's horizon, so the un-retargeted alias is sufficient.
			err = s.Attach(pre.Snap)
		default:
			err = s.Restore(pre.Snap)
		}
		if err != nil {
			return Result{}, err
		}
	}
	tr := pre.Trace.(gstTrace)
	start := time.Now() //gasper:nondet wall-clock duration metadata only; never part of result identity
	if !pre.Done {
		if err := runEpochsRangeContext(ctx, s, pre.Epoch, p.Horizon, gstObserver(s, &tr.violation)); err != nil {
			return Result{}, err
		}
	}
	return finishSimGST(s, p, tr.violation, time.Since(start)), nil //gasper:nondet wall-clock duration metadata only; never part of result identity
}

// --- sim/leak --------------------------------------------------------

// forkSimLeak shares prefixes across horizon sweeps (the partition never
// heals, so every dimension but horizon shapes the whole run).
func forkSimLeak(p Params, v SimVariant) (string, int, bool) {
	if validateSimLeak(p) != nil {
		return "", 0, false
	}
	return simPrefixKey(p, v, true), p.Horizon, true
}

func runToSimLeak(ctx context.Context, p Params, v SimVariant, from *Prefix, epoch int) (*Prefix, error) {
	if from != nil && (from.Done || from.Epoch >= epoch) {
		return from, nil
	}
	s, err := prefixSim(from, false, func() sim.Config { return leakPartitionConfig(p, nil, v) })
	if err != nil {
		return nil, err
	}
	tr := leakTrace{minStakeRatio: 1}
	fromEpoch := 0
	if from != nil {
		tr = from.Trace.(leakTrace).clone()
		fromEpoch = from.Epoch
	}
	if err := runEpochsRangeContext(ctx, s, fromEpoch, epoch, leakObserver(s, p, &tr)); err != nil {
		return nil, err
	}
	out := &Prefix{Snap: s.Snapshot(), Epoch: epoch, Trace: tr, cont: &simCont{s: s}}
	if tr.conflict != 0 {
		out.Epoch, out.Done = int(tr.conflict), true
	}
	return out, nil
}

func resumeSimLeak(ctx context.Context, pre *Prefix, p Params, v SimVariant) (Result, error) {
	s, err := prefixSim(pre, resumeReadOnly(pre, p), func() sim.Config { return leakPartitionConfig(p, nil, v) })
	if err != nil {
		return Result{}, err
	}
	tr := pre.Trace.(leakTrace).clone()
	start := time.Now() //gasper:nondet wall-clock duration metadata only; never part of result identity
	if !pre.Done {
		if err := runEpochsRangeContext(ctx, s, pre.Epoch, p.Horizon, leakObserver(s, p, &tr)); err != nil {
			return Result{}, err
		}
	}
	return finishSimLeak(p, s, tr, time.Since(start)) //gasper:nondet wall-clock duration metadata only; never part of result identity
}

// --- sim/semiactive --------------------------------------------------

// semiTrace extends the leak trace with the semi-active adversary's gait
// state at the checkpoint: sim.Snapshot deliberately leaves adversary
// state to the caller, so each prefix pairs its snapshot with a
// behavior.SemiActive clone taken at the same epoch boundary. The stored
// adversary belongs to the prefix — continuations Clone it before
// advancing.
type semiTrace struct {
	leakTrace
	adv *behavior.SemiActive
}

// forkSimSemiActive shares prefixes across horizon sweeps, like sim/leak.
func forkSimSemiActive(p Params, v SimVariant) (string, int, bool) {
	if validateSimSemiActive(p) != nil {
		return "", 0, false
	}
	return simPrefixKey(p, v, true), p.Horizon, true
}

func runToSimSemiActive(ctx context.Context, p Params, v SimVariant, from *Prefix, epoch int) (*Prefix, error) {
	if from != nil && (from.Done || from.Epoch >= epoch) {
		return from, nil
	}
	var tr semiTrace
	s, err := prefixSim(from, false, func() sim.Config {
		byz, _ := semiActiveSetup(p)
		return leakPartitionConfig(p, byz, v)
	})
	if err != nil {
		return nil, err
	}
	fromEpoch := 0
	if from != nil {
		prev := from.Trace.(semiTrace)
		tr = semiTrace{leakTrace: prev.leakTrace.clone(), adv: prev.adv.Clone()}
		fromEpoch = from.Epoch
	} else {
		_, adv := semiActiveSetup(p)
		tr = semiTrace{leakTrace: leakTrace{minStakeRatio: 1}, adv: adv}
	}
	// The trace's adversary (a fresh clone of the prefix's) replaces
	// whatever instance the simulation carried — the prefix's own stored
	// adversary must never advance.
	s.Cfg.Adversary = tr.adv
	if err := runEpochsRangeContext(ctx, s, fromEpoch, epoch, leakObserver(s, p, &tr.leakTrace)); err != nil {
		return nil, err
	}
	out := &Prefix{Snap: s.Snapshot(), Epoch: epoch, Trace: tr, cont: &simCont{s: s}}
	if tr.conflict != 0 {
		out.Epoch, out.Done = int(tr.conflict), true
	}
	return out, nil
}

func resumeSimSemiActive(ctx context.Context, pre *Prefix, p Params, v SimVariant) (Result, error) {
	s, err := prefixSim(pre, resumeReadOnly(pre, p), func() sim.Config {
		byz, _ := semiActiveSetup(p)
		return leakPartitionConfig(p, byz, v)
	})
	if err != nil {
		return Result{}, err
	}
	prev := pre.Trace.(semiTrace)
	tr := prev.leakTrace.clone()
	adv := prev.adv.Clone()
	s.Cfg.Adversary = adv
	start := time.Now() //gasper:nondet wall-clock duration metadata only; never part of result identity
	if !pre.Done {
		if err := runEpochsRangeContext(ctx, s, pre.Epoch, p.Horizon, leakObserver(s, p, &tr)); err != nil {
			return Result{}, err
		}
	}
	return finishSimSemiActive(ctx, p, s, adv, tr, time.Since(start)) //gasper:nondet wall-clock duration metadata only; never part of result identity
}
