package engine

import (
	"math"
	"testing"
)

// TestSimLeakValidation pins the sim/leak parameter contract without
// paying for a long run.
func TestSimLeakValidation(t *testing.T) {
	for _, p := range []Params{
		{P0: 0, N: 100, Horizon: 100},   // empty branch
		{P0: 1, N: 100, Horizon: 100},   // empty branch
		{P0: 0.99, N: 50, Horizon: 100}, // branch B rounds to empty
		{P0: 0.01, N: 50, Horizon: 100}, // branch A rounds to empty
		{P0: 0.5, N: 2, Horizon: 100},   // too few validators
		{P0: 0.5, N: 100, Horizon: 2},   // no finality runway
	} {
		p := p.MarkExplicit(FieldP0)
		if _, err := Default.Run(ScenarioSimLeak, p); err == nil {
			t.Errorf("sim/leak accepted %+v", p)
		}
	}
	if _, err := Default.Run(ScenarioSimSemiActive, Params{Beta0: 0.0001, N: 100, Horizon: 10}); err == nil {
		t.Error("sim/semiactive accepted a byzantine set that rounds to zero")
	}
}

// TestSimLeakConflictEpochMatchesAnalyticAnchor is the PR's acceptance
// run: the full-protocol, full-spec (2^26 quotient) 10,000-validator
// Scenario 5.1 simulation — lasting 50/50 partition, inactivity leak for
// thousands of epochs — must finalize conflicting checkpoints within ±2%
// of the paper's continuous-model anchor (4662; the paper-parameter
// variant of the same quantity is Table 1's 4686, inside the band too).
// The run takes a couple of minutes; -short skips it.
func TestSimLeakConflictEpochMatchesAnalyticAnchor(t *testing.T) {
	if testing.Short() {
		t.Skip("full-spec 10k-validator leak run (minutes); run without -short")
	}
	res, err := Default.Run(ScenarioSimLeak, Params{})
	if err != nil {
		t.Fatal(err)
	}
	conflict, ok := res.Metric("conflict_epoch")
	if !ok || conflict == 0 {
		t.Fatalf("no conflicting finalization within the horizon: %s", res)
	}
	const anchor = 4662.0
	if dev := math.Abs(conflict-anchor) / anchor; dev > 0.02 {
		t.Fatalf("sim/leak conflict epoch %v deviates %.2f%% from the analytic anchor %v (tolerance 2%%)",
			conflict, dev*100, anchor)
	}
	t.Logf("sim/leak: conflict at epoch %v (anchor %v, paper Table 1: 4686)", conflict, anchor)
}

// TestSimSemiActiveMatchesAggregateEngine runs Table 3's beta0=0.33 row
// at full protocol (reduced validator count — the conflict epoch is set
// by the penalty arithmetic, not the population) and checks the measured
// conflict epoch lands next to the aggregate integer engine's (the
// paper's own Table 3 reproduction), within the few-percent friction the
// full protocol adds: discrete per-epoch branch parity and marginal
// quorum links that clear an epoch or two late.
func TestSimSemiActiveMatchesAggregateEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("full-spec semi-active leak run (~600 epochs); run without -short")
	}
	res, err := Default.Run(ScenarioSimSemiActive, Params{N: 2000, Horizon: 900})
	if err != nil {
		t.Fatal(err)
	}
	conflict, _ := res.Metric("conflict_epoch")
	anchor, _ := res.Metric("aggregate_epoch")
	if conflict == 0 {
		t.Fatalf("no conflicting finalization within the horizon: %s", res)
	}
	if anchor == 0 {
		t.Fatalf("aggregate engine reported no conflict: %s", res)
	}
	if dev := math.Abs(conflict-anchor) / anchor; dev > 0.06 {
		t.Fatalf("sim/semiactive conflict epoch %v deviates %.2f%% from the aggregate engine's %v (tolerance 6%%)",
			conflict, dev*100, anchor)
	}
	if gait, _ := res.Metric("gait_epoch"); gait == 0 {
		t.Fatal("the adversary never started its finalization gait")
	}
	t.Logf("sim/semiactive: conflict at epoch %v (aggregate %v)", conflict, anchor)
}
