package engine

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// memStore is an in-memory CheckpointStore for the runner tests (the
// durable tier's own torn-write/corruption table lives in
// internal/store). afterSave, when set, observes each successful save —
// the cancellation tests use it to cut the context at a precise
// checkpoint boundary.
type memStore struct {
	mu        sync.Mutex
	data      map[string][]byte
	saves     int
	loads     int
	deletes   int
	afterSave func(saves int)
}

func newMemStore() *memStore { return &memStore{data: make(map[string][]byte)} }

func (m *memStore) SaveCheckpoint(cellKey string, payload []byte) error {
	m.mu.Lock()
	m.data[cellKey] = append([]byte(nil), payload...)
	m.saves++
	saves := m.saves
	hook := m.afterSave
	m.mu.Unlock()
	if hook != nil {
		hook(saves)
	}
	return nil
}

func (m *memStore) LoadCheckpoint(cellKey string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.loads++
	payload, ok := m.data[cellKey]
	return payload, ok
}

func (m *memStore) DeleteCheckpoint(cellKey string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.data[cellKey]; ok {
		delete(m.data, cellKey)
		m.deletes++
	}
}

func (m *memStore) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.data)
}

// checkpointTestCells are fast parameterizations of the four
// checkpointable scenarios, each deep enough to cross several small
// checkpoint intervals.
var checkpointTestCells = []Cell{
	{Scenario: ScenarioSimDrops, Params: Params{P0: 0.5, N: 16, Horizon: 8, Seed: 1, Rate: 0.1}},
	{Scenario: ScenarioSimGST, Params: Params{P0: 0.5, N: 24, Horizon: 12, Seed: 3, GST: 6}},
	{Scenario: ScenarioSimLeak, Params: Params{P0: 0.5, N: 16, Horizon: 40, Seed: 1}},
	{Scenario: ScenarioSimSemiActive, Params: Params{P0: 0.5, Beta0: 0.25, N: 16, Horizon: 30, Seed: 1}},
}

// shrinkChunk lowers the checkpoint stepping bound for a test so small
// horizons cross multiple chunks.
func shrinkChunk(t *testing.T, chunk int) {
	t.Helper()
	prev := checkpointChunk
	checkpointChunk = chunk
	t.Cleanup(func() { checkpointChunk = prev })
}

// TestCheckpointableScenarioRegistration: every forkable sim scenario in
// the default registry also opts into durable checkpoints.
func TestCheckpointableScenarioRegistration(t *testing.T) {
	for _, name := range []string{ScenarioSimDrops, ScenarioSimGST, ScenarioSimLeak, ScenarioSimSemiActive} {
		s, ok := Default.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if _, ok := s.(CheckpointableScenario); !ok {
			t.Errorf("%s does not implement CheckpointableScenario", name)
		}
	}
}

// TestPrefixCodecRoundTrip is the prefix-level codec contract for all
// four scenarios: RunTo to a mid-cell epoch, encode, decode, resume —
// the result must be bit-identical (Meta aside) to the uninterrupted
// cold run.
func TestPrefixCodecRoundTrip(t *testing.T) {
	ctx := context.Background()
	for _, cell := range checkpointTestCells {
		t.Run(cell.Scenario, func(t *testing.T) {
			sc, ok := Default.Lookup(cell.Scenario)
			if !ok {
				t.Fatalf("%s not registered", cell.Scenario)
			}
			cs := sc.(CheckpointableScenario)
			p := cell.Params.WithDefaults(sc.Defaults())

			cold, err := sc.Run(p)
			if err != nil {
				t.Fatal(err)
			}

			_, branch, ok := cs.Fork(p)
			if !ok {
				t.Fatalf("Fork(%v) not ok", p)
			}
			mid := branch / 2
			if mid == 0 {
				mid = 1
			}
			pre, err := cs.RunTo(ctx, p, nil, mid)
			if err != nil {
				t.Fatal(err)
			}
			var blob bytes.Buffer
			if err := cs.EncodePrefix(&blob, pre); err != nil {
				t.Fatalf("EncodePrefix: %v", err)
			}
			dec, err := cs.DecodePrefix(bytes.NewReader(blob.Bytes()))
			if err != nil {
				t.Fatalf("DecodePrefix: %v", err)
			}
			if dec.Epoch != pre.Epoch || dec.Done != pre.Done || !dec.Owned {
				t.Fatalf("decoded prefix position = (epoch %d, done %t, owned %t), want (%d, %t, true)",
					dec.Epoch, dec.Done, dec.Owned, pre.Epoch, pre.Done)
			}
			warm, err := cs.ResumeFrom(ctx, dec, p)
			if err != nil {
				t.Fatalf("ResumeFrom(decoded): %v", err)
			}
			if got, want := warm.WithoutMeta(), cold.WithoutMeta(); !reflect.DeepEqual(got, want) {
				t.Fatalf("decoded prefix's resume diverged from the cold run:\n  resumed: %+v\n  cold:    %+v", got, want)
			}
		})
	}
}

// TestPrefixCodecRejectsMismatch: a blob written by a different scenario
// or a skewed version decodes as an error (the runner's cold-start
// verdict), never as a wrong prefix.
func TestPrefixCodecRejectsMismatch(t *testing.T) {
	ctx := context.Background()
	leak, _ := Default.Lookup(ScenarioSimLeak)
	cs := leak.(CheckpointableScenario)
	p := Params{P0: 0.5, N: 16, Horizon: 40, Seed: 1}.WithDefaults(leak.Defaults())
	pre, err := cs.RunTo(ctx, p, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := cs.EncodePrefix(&blob, pre); err != nil {
		t.Fatal(err)
	}

	drops, _ := Default.Lookup(ScenarioSimDrops)
	if _, err := drops.(CheckpointableScenario).DecodePrefix(bytes.NewReader(blob.Bytes())); err == nil {
		t.Fatal("sim/drops decoded a sim/leak checkpoint")
	}
	skewed := append([]byte(nil), blob.Bytes()...)
	skewed[0]++ // prefixCodecVersion is the first little-endian u32
	if _, err := cs.DecodePrefix(bytes.NewReader(skewed)); err == nil {
		t.Fatal("version-skewed prefix decoded")
	}
	if _, err := cs.DecodePrefix(bytes.NewReader(blob.Bytes()[:blob.Len()/2])); err == nil {
		t.Fatal("truncated prefix decoded")
	}
}

// TestSweepCheckpointTransparent: a checkpointed sweep with no prior
// state produces results bit-identical to the plain sweep, writes
// periodic checkpoints while running, and leaves the store empty (every
// completed cell deletes its checkpoint).
func TestSweepCheckpointTransparent(t *testing.T) {
	shrinkChunk(t, 4)
	ctx := context.Background()
	cold := SweepContext(ctx, checkpointTestCells, Options{Workers: 2})

	ms := newMemStore()
	warm := SweepContext(ctx, checkpointTestCells, Options{
		Workers:    2,
		Checkpoint: &CheckpointOptions{Every: 8, Store: ms},
	})
	if got, want := StripMeta(warm), StripMeta(cold); !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpointed sweep diverged from the plain sweep:\n  checkpointed: %+v\n  plain:        %+v", got, want)
	}
	for i, r := range warm {
		ck := r.Meta.Checkpoint
		if ck == nil {
			t.Fatalf("cell %d carries no checkpoint meta: %+v", i, r.Meta)
		}
		if ck.Resumed {
			t.Errorf("cell %d claims a resume on an empty store", i)
		}
		if ck.Written == 0 {
			t.Errorf("cell %d wrote no checkpoints (meta %+v)", i, ck)
		}
	}
	if n := ms.len(); n != 0 {
		t.Fatalf("store holds %d checkpoints after all cells completed, want 0", n)
	}
	if ms.saves == 0 || ms.deletes == 0 {
		t.Fatalf("store never exercised: saves=%d deletes=%d", ms.saves, ms.deletes)
	}
}

// TestSweepCheckpointResume is the crash-resume contract at the sweep
// level: a cell whose store holds a mid-cell checkpoint (as a killed
// worker would leave behind) resumes from it — reporting the epochs it
// did not re-simulate — and its result is bit-identical to the cold run.
func TestSweepCheckpointResume(t *testing.T) {
	shrinkChunk(t, 4)
	ctx := context.Background()
	cell := Cell{Scenario: ScenarioSimLeak, Params: Params{P0: 0.5, N: 16, Horizon: 40, Seed: 1}}
	cold := SweepContext(ctx, []Cell{cell}, Options{Workers: 1})

	// Plant the checkpoint a crashed worker would have left at epoch 16.
	sc, _ := Default.Lookup(cell.Scenario)
	cs := sc.(CheckpointableScenario)
	p := cell.Params.WithDefaults(sc.Defaults())
	pre, err := cs.RunTo(ctx, p, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	ms := newMemStore()
	key, ok := CanonicalCellKey(Default, cell)
	if !ok {
		t.Fatal("no canonical key")
	}
	if err := savePrefixPayload(cs, ms, key, pre); err != nil {
		t.Fatal(err)
	}

	warm := SweepContext(ctx, []Cell{cell}, Options{
		Workers:    1,
		Checkpoint: &CheckpointOptions{Every: 8, Store: ms},
	})
	if got, want := StripMeta(warm), StripMeta(cold); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed run diverged from the cold run:\n  resumed: %+v\n  cold:    %+v", got, want)
	}
	ck := warm[0].Meta.Checkpoint
	if ck == nil || !ck.Resumed || ck.ResumeEpoch != 16 || ck.EpochsSaved != 16 {
		t.Fatalf("checkpoint meta %+v, want resumed from epoch 16", ck)
	}
	if n := ms.len(); n != 0 {
		t.Fatalf("store holds %d checkpoints after completion, want 0", n)
	}
}

// TestSweepCheckpointCorruptColdStart: an undecodable checkpoint payload
// (schema drift the store's framing cannot catch) is silently discarded —
// the cell starts cold, produces the correct result, and repairs the
// store.
func TestSweepCheckpointCorruptColdStart(t *testing.T) {
	shrinkChunk(t, 4)
	ctx := context.Background()
	cell := Cell{Scenario: ScenarioSimLeak, Params: Params{P0: 0.5, N: 16, Horizon: 40, Seed: 1}}
	cold := SweepContext(ctx, []Cell{cell}, Options{Workers: 1})

	ms := newMemStore()
	key, _ := CanonicalCellKey(Default, cell)
	ms.data[key] = []byte("not a checkpoint at all")

	warm := SweepContext(ctx, []Cell{cell}, Options{
		Workers:    1,
		Checkpoint: &CheckpointOptions{Every: 8, Store: ms},
	})
	if got, want := StripMeta(warm), StripMeta(cold); !reflect.DeepEqual(got, want) {
		t.Fatalf("corrupt-checkpoint run diverged from the cold run")
	}
	ck := warm[0].Meta.Checkpoint
	if ck == nil || ck.Resumed {
		t.Fatalf("checkpoint meta %+v, want a cold start", ck)
	}
	if n := ms.len(); n != 0 {
		t.Fatalf("store holds %d checkpoints after completion, want 0", n)
	}
}

// TestSweepCheckpointCancelResume: a cell cancelled mid-run (a draining
// worker) leaves its newest checkpoint in the store; a rerun against the
// same store resumes from it and matches the cold run bit-identically —
// kill-and-resume recomputes at most one checkpoint interval.
func TestSweepCheckpointCancelResume(t *testing.T) {
	shrinkChunk(t, 4)
	cell := Cell{Scenario: ScenarioSimLeak, Params: Params{P0: 0.5, N: 16, Horizon: 40, Seed: 1}}
	cold := SweepContext(context.Background(), []Cell{cell}, Options{Workers: 1})

	// Cut the context right after the second periodic save (epoch 16) —
	// the deterministic analogue of a drain signal landing mid-cell.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ms := newMemStore()
	ms.afterSave = func(saves int) {
		if saves == 2 {
			cancel()
		}
	}
	interrupted := SweepContext(ctx, []Cell{cell}, Options{
		Workers:    1,
		Checkpoint: &CheckpointOptions{Every: 8, Store: ms},
	})
	if interrupted[0].Err == "" {
		t.Fatal("cancelled cell reported no error")
	}
	if n := ms.len(); n != 1 {
		t.Fatalf("store holds %d checkpoints after the interrupted run, want 1", n)
	}

	ms.afterSave = nil
	resumed := SweepContext(context.Background(), []Cell{cell}, Options{
		Workers:    1,
		Checkpoint: &CheckpointOptions{Every: 8, Store: ms},
	})
	if got, want := StripMeta(resumed), StripMeta(cold); !reflect.DeepEqual(got, want) {
		t.Fatalf("killed-and-resumed run diverged from the uninterrupted run:\n  resumed: %+v\n  cold:    %+v", got, want)
	}
	ck := resumed[0].Meta.Checkpoint
	if ck == nil || !ck.Resumed || ck.ResumeEpoch != 16 || ck.EpochsSaved != 16 {
		t.Fatalf("checkpoint meta %+v, want resumed from epoch 16", ck)
	}
	if n := ms.len(); n != 0 {
		t.Fatalf("store holds %d checkpoints after completion, want 0", n)
	}
}

// TestCheckpointSkipsNonCheckpointable: cells of scenarios without the
// prefix codec (analytic scenarios, sim/bounce) run the plain path
// untouched — same results, no store traffic.
func TestCheckpointSkipsNonCheckpointable(t *testing.T) {
	cells := []Cell{
		{Scenario: ScenarioPartition, Params: Params{P0: 0.5}},
		{Scenario: ScenarioSimBounce, Params: Params{N: 40, Horizon: 8, GST: 2, P0: 0.7, Beta0: 0.25, Seed: 19}},
	}
	ctx := context.Background()
	cold := SweepContext(ctx, cells, Options{Workers: 1})
	ms := newMemStore()
	warm := SweepContext(ctx, cells, Options{
		Workers:    1,
		Checkpoint: &CheckpointOptions{Every: 8, Store: ms},
	})
	if got, want := StripMeta(warm), StripMeta(cold); !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpoint option perturbed non-checkpointable cells")
	}
	for i, r := range warm {
		if r.Meta.Checkpoint != nil {
			t.Errorf("cell %d carries checkpoint meta %+v, want none", i, r.Meta.Checkpoint)
		}
	}
	if ms.saves != 0 || ms.loads != 0 {
		t.Fatalf("store touched for non-checkpointable cells: saves=%d loads=%d", ms.saves, ms.loads)
	}
}

// TestCheckpointMetaMerged: serving layers stamping their own Meta must
// carry the checkpoint provenance a cell arrived with.
func TestCheckpointMetaMerged(t *testing.T) {
	ck := &CheckpointMeta{Resumed: true, ResumeEpoch: 4000, EpochsSaved: 4000, Written: 2}
	m := RunMeta{DurationMS: 5, Cached: true}.Merged(&RunMeta{Checkpoint: ck})
	if m.Checkpoint != ck {
		t.Fatalf("Merged dropped checkpoint provenance: %+v", m.Checkpoint)
	}
	own := &CheckpointMeta{Written: 1}
	if m = (RunMeta{Checkpoint: own}).Merged(&RunMeta{Checkpoint: ck}); m.Checkpoint != own {
		t.Fatal("Merged overwrote the layer's own checkpoint meta")
	}
}

// failStore breaks SaveCheckpoint; the run must still complete correctly.
type failStore struct{ memStore }

func (f *failStore) SaveCheckpoint(string, []byte) error {
	return errors.New("disk full")
}

// TestCheckpointSaveFailureHarmless: a store that cannot persist (disk
// full) only costs resume depth — the cell still completes with the
// correct result.
func TestCheckpointSaveFailureHarmless(t *testing.T) {
	shrinkChunk(t, 4)
	ctx := context.Background()
	cell := Cell{Scenario: ScenarioSimLeak, Params: Params{P0: 0.5, N: 16, Horizon: 40, Seed: 1}}
	cold := SweepContext(ctx, []Cell{cell}, Options{Workers: 1})
	fs := &failStore{memStore{data: make(map[string][]byte)}}
	warm := SweepContext(ctx, []Cell{cell}, Options{
		Workers:    1,
		Checkpoint: &CheckpointOptions{Every: 8, Store: fs},
	})
	if got, want := StripMeta(warm), StripMeta(cold); !reflect.DeepEqual(got, want) {
		t.Fatalf("save failures perturbed the result")
	}
	if ck := warm[0].Meta.Checkpoint; ck == nil || ck.Written != 0 {
		t.Fatalf("checkpoint meta %+v, want written=0 under a failing store", warm[0].Meta.Checkpoint)
	}
}
