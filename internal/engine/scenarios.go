package engine

import (
	"context"
	"fmt"
	"math"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/types"
)

// Registry names of the built-in scenarios.
const (
	// The paper's five Table 1 scenarios plus the footnote-12 corner.
	ScenarioPartition   = "5.1"
	ScenarioDoubleVote  = "5.2.1"
	ScenarioSemiActive  = "5.2.2"
	ScenarioDelay       = "5.2.3"
	ScenarioDelayCorner = "5.2.3c"
	ScenarioBounce      = "5.3"
	// Generic engines for open-ended sweeps.
	ScenarioLeakSim      = "leaksim"
	ScenarioBounceMC     = "bounce-mc"
	ScenarioFig7Search   = "fig7-threshold"
	ScenarioSimPartition = "sim/partition"
	// Closed-form solvers.
	ScenarioAnalyticConflict  = "analytic/conflict"
	ScenarioAnalyticBounce    = "analytic/bounce"
	ScenarioAnalyticThreshold = "analytic/threshold"
)

func init() {
	Default.MustRegister(NewScenario(ScenarioPartition,
		"All honest, lasting partition",
		Params{P0: 0.5},
		func(p Params) (Result, error) {
			s, err := core.Scenario51(p.P0)
			return summaryResult(s), err
		}))
	Default.MustRegister(NewScenario(ScenarioDoubleVote,
		"Byzantine double vote (slashable)",
		Params{P0: 0.5, Beta0: 0.2},
		func(p Params) (Result, error) {
			s, err := core.Scenario521(p.P0, p.Beta0)
			return summaryResult(s), err
		}))
	Default.MustRegister(NewScenario(ScenarioSemiActive,
		"Byzantine semi-active (non-slashable)",
		Params{P0: 0.5, Beta0: 0.2},
		func(p Params) (Result, error) {
			s, err := core.Scenario522(p.P0, p.Beta0)
			return summaryResult(s), err
		}))
	Default.MustRegister(NewScenario(ScenarioDelay,
		"Byzantine delay finalization",
		Params{P0: 0.5, Beta0: 0.25},
		func(p Params) (Result, error) {
			s, err := core.Scenario523(p.P0, p.Beta0)
			return summaryResult(s), err
		}))
	Default.MustRegister(NewScenario(ScenarioDelayCorner,
		"Finalize just before ejection (fn. 12; horizon = lead epochs before ejection, not a run bound)",
		Params{P0: 0.5, Beta0: 0.25, Horizon: 200},
		func(p Params) (Result, error) {
			s, err := core.Scenario523Corner(p.P0, p.Beta0, types.Epoch(p.Horizon))
			return summaryResult(s), err
		}))
	Default.MustRegister(NewScenario(ScenarioBounce,
		"Probabilistic bouncing attack",
		Params{P0: 0.5, Beta0: 0.33, Seed: 1},
		func(p Params) (Result, error) {
			s, err := core.Scenario53(p.P0, p.Beta0, p.Seed)
			return summaryResult(s), err
		}))

	Default.MustRegister(NewContextScenario(ScenarioLeakSim,
		"Aggregate two-branch leak simulation (mode: absent, absent-delay, double, semi, semi-delay)",
		Params{P0: 0.5, Mode: "absent", N: 10000, Horizon: 9000},
		runLeakSim))
	Default.MustRegister(NewContextScenario(ScenarioBounceMC,
		"Per-validator bouncing-attack Monte-Carlo (one trajectory per seed)",
		Params{P0: 0.5, Beta0: 1.0 / 3.0, Seed: 1, N: 500, Horizon: 4000},
		runBounceMC))
	Default.MustRegister(NewContextScenario(ScenarioFig7Search,
		"Bisection for the minimal beta0 crossing 1/3 on both branches (Figure 7)",
		Params{P0: 0.5, N: 10000, Horizon: 9000},
		runFig7Search))
	Default.MustRegister(NewContextScenario(ScenarioSimPartition,
		"Full protocol simulator: partitioned network until a finality-safety violation",
		Params{P0: 0.5, N: 16, Horizon: 40, Seed: 3},
		runSimPartition))

	Default.MustRegister(NewScenario(ScenarioAnalyticConflict,
		"Continuous-model conflicting finalization (mode: honest, slashing, semi)",
		Params{P0: 0.5, Mode: "honest"},
		runAnalyticConflict))
	Default.MustRegister(NewScenario(ScenarioAnalyticBounce,
		"Equation 24 bouncing probability and the Equation 14 window",
		Params{P0: 0.5, Beta0: 1.0 / 3.0, Horizon: 4000},
		runAnalyticBounce))
	Default.MustRegister(NewScenario(ScenarioAnalyticThreshold,
		"Equation 13 minimal beta0 reaching 1/3 (mode: paper, continuous)",
		Params{P0: 0.5, Mode: "paper"},
		runAnalyticThreshold))
}

// summaryResult converts a core scenario summary to a Result.
func summaryResult(s core.Summary) Result {
	return Result{
		Outcome: s.Outcome,
		Metrics: []Metric{
			{Name: "analytic_epoch", Value: s.AnalyticEpoch},
			{Name: "sim_epoch", Value: float64(s.SimEpoch)},
			{Name: "peak_byz_proportion", Value: s.PeakByzProportion},
			{Name: "crossed_one_third", Value: boolMetric(s.CrossedOneThird)},
		},
	}
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// leakMode maps a Params.Mode string to a LeakSim strategy.
func leakMode(mode string) (core.ByzMode, bool, error) {
	switch mode {
	case "", "absent":
		return core.ByzAbsent, false, nil
	case "absent-delay":
		return core.ByzAbsent, true, nil
	case "double":
		return core.ByzDoubleVote, false, nil
	case "semi":
		return core.ByzSemiActive, false, nil
	case "semi-delay":
		return core.ByzSemiActive, true, nil
	default:
		return 0, false, fmt.Errorf("engine: unknown leaksim mode %q (want absent, absent-delay, double, semi, semi-delay)", mode)
	}
}

func runLeakSim(ctx context.Context, p Params) (Result, error) {
	mode, delay, err := leakMode(p.Mode)
	if err != nil {
		return Result{}, err
	}
	ls := core.LeakSim{N: p.N, P0: p.P0, Beta0: p.Beta0, Mode: mode, DelayFinalization: delay}
	res, err := ls.RunContext(ctx, p.Horizon, p.Sample)
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Metrics: []Metric{
			{Name: "conflict_epoch", Value: float64(res.ConflictEpoch)},
			{Name: "threshold_epoch_a", Value: float64(res.A.ThresholdEpoch)},
			{Name: "threshold_epoch_b", Value: float64(res.B.ThresholdEpoch)},
			{Name: "ejection_epoch_a", Value: float64(res.A.EjectionEpoch)},
			{Name: "ejection_epoch_b", Value: float64(res.B.EjectionEpoch)},
			{Name: "peak_byz_a", Value: res.A.PeakByzProportion},
			{Name: "peak_byz_b", Value: res.B.PeakByzProportion},
			{Name: "crossed_one_third", Value: boolMetric(res.CrossedOneThird)},
		},
	}
	if p.Sample > 0 {
		out.CurveName = "active_ratio_a"
		out.Curve = make([]CurvePoint, 0, len(res.A.Trace))
		for _, tr := range res.A.Trace {
			out.Curve = append(out.Curve, CurvePoint{X: float64(tr.Epoch), Y: tr.ActiveRatio})
		}
	}
	return out, nil
}

func runBounceMC(ctx context.Context, p Params) (Result, error) {
	mc := core.BounceMC{NHonest: p.N, Beta0: p.Beta0, P0: p.P0, Seed: p.Seed}
	model := analytic.BounceModel{P0: p.P0}
	params := analytic.PaperParams()
	if p.Sample > 0 {
		samples, crossedAt, err := mc.RunContext(ctx, p.Horizon, p.Sample)
		if err != nil {
			return Result{}, err
		}
		out := Result{
			Metrics: []Metric{
				{Name: "crossed_epoch", Value: float64(crossedAt)},
			},
			CurveName: "frac_below_a",
		}
		for _, s := range samples {
			// Run also inserts an extra sample at the crossing epoch;
			// keep only the aligned grid so curves average cell-wise.
			if uint64(s.Epoch)%uint64(p.Sample) == 0 {
				out.Curve = append(out.Curve, CurvePoint{X: float64(s.Epoch), Y: s.FracBelowA})
			}
		}
		return out, nil
	}
	probs, err := mc.ExceedProbabilityContext(ctx, []types.Epoch{types.Epoch(p.Horizon)}, 1)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Metrics: []Metric{
			{Name: "mc_probability", Value: probs[0]},
			{Name: "eq24_probability", Value: model.ExceedProbability(float64(p.Horizon), p.Beta0, params)},
		},
	}, nil
}

// runFig7Search bisects over full LeakSim runs for the minimal beta0 whose
// Byzantine proportion crosses 1/3 on both branches at the given p0
// (Figure 7's simulated boundary).
func runFig7Search(ctx context.Context, p Params) (Result, error) {
	lo, hi := 0.01, 0.40
	for iter := 0; iter < 12; iter++ {
		mid := (lo + hi) / 2
		ls := core.LeakSim{N: p.N, P0: p.P0, Beta0: mid,
			Mode: core.ByzSemiActive, DelayFinalization: true}
		res, err := ls.RunContext(ctx, p.Horizon, 0)
		if err != nil {
			return Result{}, fmt.Errorf("engine: fig7 search at p0=%v beta0=%v: %w", p.P0, mid, err)
		}
		if res.CrossedOneThird {
			hi = mid
		} else {
			lo = mid
		}
	}
	params := analytic.ContinuousParams()
	an := math.Max(params.ThresholdBeta0(p.P0), params.ThresholdBeta0(1-p.P0))
	return Result{
		Metrics: []Metric{
			{Name: "sim_threshold", Value: (lo + hi) / 2},
			{Name: "analytic_threshold", Value: an},
		},
	}, nil
}

// runSimPartition drives the full protocol simulator (one beacon node per
// validator) through a lasting partition under a compressed spec and
// reports the epoch of the first finality-safety violation — the
// mechanism-level counterpart of Scenario 5.1.
func runSimPartition(ctx context.Context, p Params) (Result, error) {
	nA := int(math.Round(float64(p.N) * p.P0))
	s, err := sim.New(sim.Config{
		Validators: p.N,
		Spec:       types.CompressedSpec(1 << 16),
		GST:        1 << 30,
		Delay:      1,
		Seed:       p.Seed,
		PartitionOf: func(v types.ValidatorIndex) int {
			if int(v) < nA {
				return 0
			}
			return 1
		},
	})
	if err != nil {
		return Result{}, err
	}
	violation := 0.0
	for epoch := 1; epoch <= p.Horizon && violation == 0; epoch++ {
		// A protocol-simulator epoch is orders of magnitude heavier than
		// a leak epoch, so check cancellation on every one.
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if err := s.RunEpochs(1); err != nil {
			return Result{}, err
		}
		if v := s.CheckFinalitySafety(); v != nil {
			violation = float64(epoch)
		}
	}
	out := Result{
		Metrics: []Metric{
			{Name: "violation_epoch", Value: violation},
			{Name: "violation_detected", Value: boolMetric(violation != 0)},
		},
	}
	if violation != 0 {
		out.Outcome = "2 finalized branches"
	}
	return out, nil
}

func runAnalyticConflict(p Params) (Result, error) {
	var behavior analytic.Behavior
	switch p.Mode {
	case "", "honest":
		behavior = analytic.HonestOnly
	case "slashing":
		behavior = analytic.WithSlashing
	case "semi":
		behavior = analytic.WithoutSlashing
	default:
		return Result{}, fmt.Errorf("engine: unknown analytic/conflict mode %q (want honest, slashing, semi)", p.Mode)
	}
	bc, err := analytic.PaperParams().ConflictingFinalization(behavior, p.P0, p.Beta0)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Metrics: []Metric{
			{Name: "conflict_epoch", Value: bc.ConflictEpoch},
			{Name: "threshold_epoch_a", Value: bc.ThresholdA},
			{Name: "threshold_epoch_b", Value: bc.ThresholdB},
		},
	}, nil
}

func runAnalyticBounce(p Params) (Result, error) {
	model := analytic.BounceModel{P0: p.P0}
	lo, hi := analytic.BounceWindow(p.Beta0)
	return Result{
		Metrics: []Metric{
			{Name: "eq24_probability", Value: model.ExceedProbability(float64(p.Horizon), p.Beta0, analytic.PaperParams())},
			{Name: "window_lo", Value: lo},
			{Name: "window_hi", Value: hi},
			{Name: "in_window", Value: boolMetric(lo < p.P0 && p.P0 < hi)},
		},
	}, nil
}

func runAnalyticThreshold(p Params) (Result, error) {
	var params analytic.Params
	switch p.Mode {
	case "", "paper":
		params = analytic.PaperParams()
	case "continuous":
		params = analytic.ContinuousParams()
	default:
		return Result{}, fmt.Errorf("engine: unknown analytic/threshold mode %q (want paper, continuous)", p.Mode)
	}
	own := params.ThresholdBeta0(p.P0)
	other := params.ThresholdBeta0(1 - p.P0)
	return Result{
		Metrics: []Metric{
			{Name: "threshold_branch_p0", Value: own},
			{Name: "threshold_branch_1_minus_p0", Value: other},
			{Name: "threshold_both_branches", Value: math.Max(own, other)},
		},
	}, nil
}
