package engine

import (
	"bytes"
	"context"
	"io"
	"time"
)

// DefaultCheckpointEvery is the checkpoint interval (in simulated epochs)
// when CheckpointOptions.Every is zero: frequent enough that a crashed
// Table 1 cell (~4,700 epochs) loses only a small slice of its run, rare
// enough that encoding and persisting the snapshot stays a rounding error
// against the simulation itself.
const DefaultCheckpointEvery = 500

// checkpointChunk bounds a single RunTo step inside the checkpointed
// loop. Stepping in sub-interval chunks costs only an extra in-memory
// snapshot per chunk (the ForkableScenario contract makes any split
// bit-identical) and buys a fresh resume point on cooperative
// cancellation: a drained or interrupted cell persists its newest chunk
// boundary as a final checkpoint, so a SIGINT loses at most one chunk of
// epochs, not one full checkpoint interval. kill -9 still loses at most
// one interval. A variable only so tests can shrink it.
var checkpointChunk = 128

// CheckpointStore is the durable home of mid-cell checkpoints
// (internal/store.Checkpoints is the production implementation). The
// contract mirrors the result store's: Save is atomic (temp+rename),
// Load answers only intact payloads — a torn, truncated, corrupt, or
// version-skewed entry is a silent miss, never an error — and Delete is
// idempotent.
type CheckpointStore interface {
	// LoadCheckpoint returns the newest valid checkpoint payload for the
	// cell, if any.
	LoadCheckpoint(cellKey string) ([]byte, bool)
	// SaveCheckpoint atomically persists the cell's current checkpoint,
	// replacing any previous one.
	SaveCheckpoint(cellKey string, payload []byte) error
	// DeleteCheckpoint removes the cell's checkpoint (cell completed, or
	// its payload proved undecodable).
	DeleteCheckpoint(cellKey string)
}

// CheckpointOptions turns on durable mid-cell checkpointing for sweep
// cells of checkpointable scenarios (the forkable protocol-simulator
// scenarios): a starting cell probes the store for its newest valid
// checkpoint and resumes from it instead of recomputing from epoch 0,
// and while running it persists a fresh checkpoint every Every epochs.
// Results are bit-identical to an uninterrupted cold run — the resumed
// trace carries everything the cold run would have observed.
type CheckpointOptions struct {
	// Every is the checkpoint interval in simulated epochs (0 =
	// DefaultCheckpointEvery; negative disables periodic writes, leaving
	// only resume probes).
	Every int
	// Store persists the checkpoints. Nil disables checkpointing.
	Store CheckpointStore
}

// CheckpointMeta is the durable-checkpoint provenance of one sweep cell,
// carried in RunMeta and (like all of RunMeta) excluded from determinism
// comparisons.
type CheckpointMeta struct {
	// Resumed marks a cell that found a valid on-disk checkpoint and
	// skipped re-simulating its prefix.
	Resumed bool `json:"resumed,omitempty"`
	// ResumeEpoch is the epoch of the checkpoint the cell resumed from.
	ResumeEpoch int `json:"resume_epoch,omitempty"`
	// EpochsSaved counts the epochs the resume did not re-simulate.
	EpochsSaved int `json:"epochs_saved,omitempty"`
	// Written counts the checkpoints this cell persisted while running.
	Written int `json:"written,omitempty"`
}

// CheckpointableScenario is the optional ForkableScenario extension that
// opts a scenario into durable checkpoints: its Prefix — snapshot plus
// accumulated trace — can round-trip through a byte stream. The decoded
// prefix must satisfy the same contract as a live one: ResumeFrom yields
// a Result bit-identical to the uninterrupted run's.
type CheckpointableScenario interface {
	ForkableScenario
	// EncodePrefix serializes a prefix (snapshot, epoch, trace, done).
	EncodePrefix(w io.Writer, pre *Prefix) error
	// DecodePrefix reconstructs a prefix serialized by EncodePrefix. The
	// returned prefix is Owned (its snapshot has exactly one consumer).
	// Any damage or version skew returns an error; callers treat it as
	// "no checkpoint".
	DecodePrefix(r io.Reader) (*Prefix, error)
}

// savePrefixPayload encodes a prefix and persists it under the cell's
// checkpoint key. Best-effort: an encode or store failure is returned
// for accounting but never aborts the run.
func savePrefixPayload(cs CheckpointableScenario, st CheckpointStore, cellKey string, pre *Prefix) error {
	var buf bytes.Buffer
	if err := cs.EncodePrefix(&buf, pre); err != nil {
		return err
	}
	return st.SaveCheckpoint(cellKey, buf.Bytes())
}

// decodePrefixPayload reconstructs a prefix from a stored checkpoint
// payload. Any error means the payload is unusable (version skew,
// schema drift) and the caller starts cold.
func decodePrefixPayload(cs CheckpointableScenario, payload []byte) (*Prefix, error) {
	return cs.DecodePrefix(bytes.NewReader(payload))
}

// RunCheckpointed executes one cell under the durable-checkpoint policy
// outside a sweep — the single-run entry point for callers (the client
// API, CLIs) whose long-horizon runs should survive interruption.
// handled reports whether the cell was eligible; when false the caller
// runs its plain path.
func RunCheckpointed(ctx context.Context, reg *Registry, cell Cell, ck *CheckpointOptions) (res Result, handled bool, err error) {
	if reg == nil {
		reg = Default
	}
	return runCellCheckpointed(ctx, reg, cell, ck)
}

// runCellCheckpointed executes one cell under the durable-checkpoint
// policy: probe the store, resume from the newest valid checkpoint (or
// start cold), persist a fresh checkpoint every interval while running,
// delete the checkpoint once the cell completes. handled is false when
// the cell cannot be checkpointed (scenario not checkpointable, invalid
// params, degenerate branch) — the caller then runs the plain cold path.
//
// On cooperative cancellation the newest completed chunk is flushed as a
// final checkpoint before the context error is returned, so a drained
// worker's in-flight cells resume nearly where they stopped.
func runCellCheckpointed(ctx context.Context, reg *Registry, cell Cell, ck *CheckpointOptions) (res Result, handled bool, err error) {
	if ck == nil || ck.Store == nil {
		return Result{}, false, nil
	}
	sc, ok := reg.Lookup(cell.Scenario)
	if !ok {
		return Result{}, false, nil
	}
	cs, ok := sc.(CheckpointableScenario)
	if !ok {
		return Result{}, false, nil
	}
	p := cell.Params.WithDefaults(sc.Defaults())
	_, branch, ok := cs.Fork(p)
	if !ok || branch <= 0 {
		return Result{}, false, nil
	}
	cellKey, ok := CanonicalCellKey(reg, cell)
	if !ok {
		return Result{}, false, nil
	}

	every := ck.Every
	if every == 0 {
		every = DefaultCheckpointEvery
	}

	meta := &CheckpointMeta{}
	var pre *Prefix
	if payload, found := ck.Store.LoadCheckpoint(cellKey); found {
		if dec, derr := decodePrefixPayload(cs, payload); derr == nil {
			pre = dec
			meta.Resumed = true
			meta.ResumeEpoch = dec.Epoch
			meta.EpochsSaved = dec.Epoch
		} else {
			// The store's framing was intact but the inner payload was
			// not (codec version skew, schema drift): same verdict as
			// corruption — clear it and start cold.
			ck.Store.DeleteCheckpoint(cellKey)
		}
	}

	save := func(pre *Prefix) {
		if perr := savePrefixPayload(cs, ck.Store, cellKey, pre); perr == nil {
			meta.Written++
		}
		// A failed persist only costs resume depth, never the run.
	}

	// The stepping granularity: never larger than the checkpoint interval
	// (an Every below the chunk size still checkpoints every Every
	// epochs), never larger than the chunk bound.
	step := checkpointChunk
	if every > 0 && every < step {
		step = every
	}

	start := time.Now() //gasper:nondet wall-clock duration metadata only; never part of result identity
	lastSaved := -1
	if pre != nil {
		lastSaved = pre.Epoch
	}
	for pre == nil || (!pre.Done && pre.Epoch < branch) {
		cur := 0
		if pre != nil {
			cur = pre.Epoch
		}
		next := cur + step
		if every > step {
			// Land exactly on interval boundaries so periodic saves
			// happen at multiples of Every from the start.
			if rem := every - cur%every; rem < step {
				next = cur + rem
			}
		}
		if next > branch {
			next = branch
		}
		np, rerr := cs.RunTo(ctx, p, pre, next)
		if rerr != nil {
			// Cooperative cancellation (or a genuine failure) mid-cell:
			// flush the newest completed chunk so the next attempt
			// resumes here instead of at the last interval boundary.
			if pre != nil && pre.Epoch > lastSaved {
				save(pre)
			}
			return Result{}, true, rerr
		}
		pre = np
		if pre.Done || pre.Epoch >= branch || (every > 0 && pre.Epoch-lastSaved >= every) {
			save(pre)
			lastSaved = pre.Epoch
		}
	}

	// This runner is the prefix's final consumer: nothing else references
	// the in-memory snapshot (the durable copy is independent bytes), so
	// ResumeFrom may adopt it instead of cloning.
	pre.Owned = true
	res, err = cs.ResumeFrom(ctx, pre, p)
	if err != nil {
		return Result{}, true, err
	}
	ck.Store.DeleteCheckpoint(cellKey)
	// Same stamping Registry.RunContext applies on the plain path.
	res.Scenario = sc.Name()
	res.Params = p
	res.Meta = RunMeta{
		DurationMS: float64(time.Since(start)) / float64(time.Millisecond), //gasper:nondet wall-clock duration metadata only; never part of result identity
		Checkpoint: meta,
	}.Merged(res.Meta)
	// The scenario stamped throughput over ResumeFrom's tail alone; here
	// the chunked RunTo loop did the work, so restate it over the whole
	// checkpointed wall clock. Like warm start, a resumed cell counts the
	// epochs its checkpoint skipped — effective throughput.
	if secs := float64(res.Meta.DurationMS) / 1000; secs > 0 && p.Horizon > 0 {
		res.Meta.EpochsPerSec = float64(p.Horizon) / secs
	}
	return res, true, nil
}
