package network

import (
	"testing"

	"repro/internal/types"
)

func newNet(nodes int, gst, delay types.Slot) *Network[string] {
	return New[string](Config{Nodes: nodes, GST: gst, Delay: delay})
}

func TestBroadcastSamePartition(t *testing.T) {
	n := newNet(3, 1000, 1)
	n.Broadcast(0, 5, "hello")
	// Sender receives after Delay like everyone else (never into an
	// already-drained slot).
	if got := n.Deliveries(0, 6); len(got) != 1 || got[0] != "hello" {
		t.Errorf("self-delivery = %v", got)
	}
	// Peers receive after Delay.
	if got := n.Deliveries(1, 5); len(got) != 0 {
		t.Errorf("early delivery: %v", got)
	}
	if got := n.Deliveries(1, 6); len(got) != 1 {
		t.Errorf("delivery at +delay = %v", got)
	}
	if got := n.Deliveries(2, 6); len(got) != 1 {
		t.Errorf("delivery to node 2 = %v", got)
	}
}

func TestDeliveriesDrains(t *testing.T) {
	n := newNet(2, 1000, 0)
	n.Broadcast(0, 5, "x")
	if got := n.Deliveries(1, 5); len(got) != 1 {
		t.Fatalf("first drain = %v", got)
	}
	if got := n.Deliveries(1, 5); len(got) != 0 {
		t.Errorf("second drain must be empty, got %v", got)
	}
}

func TestPartitionBlocksCrossTraffic(t *testing.T) {
	n := newNet(4, 100, 1)
	n.SetPartition(0, 0)
	n.SetPartition(1, 0)
	n.SetPartition(2, 1)
	n.SetPartition(3, 1)
	n.Broadcast(0, 5, "intra")
	// Same partition: delivered at 6.
	if got := n.Deliveries(1, 6); len(got) != 1 {
		t.Errorf("intra-partition delivery missing: %v", got)
	}
	// Cross partition: held until GST + delay.
	if got := n.Deliveries(2, 6); len(got) != 0 {
		t.Errorf("cross-partition message leaked before GST: %v", got)
	}
	if got := n.Deliveries(2, 101); len(got) != 1 {
		t.Errorf("cross-partition message not delivered at GST+delay: %v", got)
	}
	if got := n.Deliveries(3, 101); len(got) != 1 {
		t.Errorf("cross-partition message to node 3 missing: %v", got)
	}
}

func TestPartitionHealsAtGST(t *testing.T) {
	n := newNet(2, 100, 1)
	n.SetPartition(0, 0)
	n.SetPartition(1, 1)
	n.Broadcast(0, 100, "after-gst")
	if got := n.Deliveries(1, 101); len(got) != 1 {
		t.Errorf("post-GST broadcast must cross former partitions: %v", got)
	}
}

func TestBridgingNodeCrossesPartitions(t *testing.T) {
	n := newNet(3, 1000, 1)
	n.SetPartition(0, 0)
	n.SetPartition(1, 1)
	n.SetPartition(2, 1)
	n.SetBridging(0, true)
	// Bridging sender reaches the other partition before GST.
	n.Broadcast(0, 5, "byzantine")
	if got := n.Deliveries(1, 6); len(got) != 1 {
		t.Errorf("bridging sender's message not delivered: %v", got)
	}
	// Bridging receiver hears the other partition before GST.
	n.SetBridging(0, true)
	n.Broadcast(1, 10, "honest-p1")
	if got := n.Deliveries(0, 11); len(got) != 1 {
		t.Errorf("bridging receiver did not hear other partition: %v", got)
	}
	// Non-bridging node 2 in partition 1 hears node 1 normally.
	if got := n.Deliveries(2, 11); len(got) != 1 {
		t.Errorf("intra-partition delivery missing: %v", got)
	}
}

func TestReachable(t *testing.T) {
	n := newNet(3, 100, 0)
	n.SetPartition(0, 0)
	n.SetPartition(1, 1)
	if n.Reachable(0, 1, 50) {
		t.Error("cross-partition before GST must be unreachable")
	}
	if !n.Reachable(0, 1, 100) {
		t.Error("must be reachable at GST")
	}
	if !n.Reachable(0, 0, 50) {
		t.Error("self always reachable")
	}
	n.SetBridging(1, true)
	if !n.Reachable(0, 1, 50) {
		t.Error("bridging target must be reachable")
	}
}

func TestBroadcastAsRoutesByChosenPartition(t *testing.T) {
	n := newNet(5, 100, 1)
	n.SetPartition(1, 0)
	n.SetPartition(2, 1)
	n.SetPartition(3, 1)
	n.SetBridging(0, true) // Byzantine sender
	n.SetBridging(4, true) // Byzantine peer
	// Byzantine node 0 speaks "as partition 1".
	n.BroadcastAs(0, 1, 5, "faceB")
	// Partition-1 members receive promptly.
	if got := n.Deliveries(2, 6); len(got) != 1 {
		t.Errorf("partition-1 member missed the message: %v", got)
	}
	if got := n.Deliveries(3, 6); len(got) != 1 {
		t.Errorf("partition-1 member missed the message: %v", got)
	}
	// Partition-0 member only hears it at GST+delay (evidence surfaces
	// after synchrony resumes).
	if got := n.Deliveries(1, 6); len(got) != 0 {
		t.Errorf("partition-0 member heard the other face early: %v", got)
	}
	if got := n.Deliveries(1, 101); len(got) != 1 {
		t.Errorf("partition-0 member never got the delayed face: %v", got)
	}
	// Bridging peers hear everything promptly.
	if got := n.Deliveries(4, 6); len(got) != 1 {
		t.Errorf("bridging peer missed the message: %v", got)
	}
	// Self-delivery after Delay.
	if got := n.Deliveries(0, 6); len(got) != 1 {
		t.Errorf("self-delivery missing: %v", got)
	}
}

func TestBroadcastAsAfterGST(t *testing.T) {
	n := newNet(3, 10, 1)
	n.SetPartition(1, 0)
	n.SetPartition(2, 1)
	n.BroadcastAs(0, 1, 20, "late")
	if got := n.Deliveries(1, 21); len(got) != 1 {
		t.Errorf("post-GST BroadcastAs must reach everyone: %v", got)
	}
}

func TestSendDirect(t *testing.T) {
	n := newNet(2, 1000, 1)
	n.SetPartition(0, 0)
	n.SetPartition(1, 1)
	// Adversary releases a withheld message at slot 42 across partitions.
	n.SendDirect(0, 1, 42, "withheld")
	if got := n.Deliveries(1, 41); len(got) != 0 {
		t.Errorf("early release: %v", got)
	}
	if got := n.Deliveries(1, 42); len(got) != 1 || got[0] != "withheld" {
		t.Errorf("scheduled release = %v", got)
	}
}

func TestDropRateRetransmits(t *testing.T) {
	// Drops are link outages between distinct partitions: a healed
	// network (GST 0) with the receiver in another partition sees every
	// cross-partition delivery delayed by RetryDelay at DropRate 1.
	n := New[string](Config{Nodes: 2, GST: 0, Delay: 1, DropRate: 1.0, RetryDelay: 3, Seed: 7})
	n.SetPartition(1, 1)
	n.Broadcast(0, 10, "flaky")
	// First attempt always dropped; retransmission arrives at 10+1+3.
	if got := n.Deliveries(1, 11); len(got) != 0 {
		t.Errorf("dropped delivery arrived: %v", got)
	}
	if got := n.Deliveries(1, 14); len(got) != 1 {
		t.Errorf("retransmission missing: %v", got)
	}
	sent, dropped := n.Stats()
	if sent != 1 || dropped != 1 {
		t.Errorf("stats = (%d, %d), want (1, 1)", sent, dropped)
	}
}

func TestDropIntraPartitionReliable(t *testing.T) {
	// Members of one partition share a view; there is no lossy link
	// between them, so even DropRate 1 never delays intra-partition
	// delivery.
	n := New[string](Config{Nodes: 2, GST: 0, Delay: 1, DropRate: 1.0, Seed: 7})
	n.Broadcast(0, 10, "local")
	if got := n.Deliveries(1, 11); len(got) != 1 {
		t.Errorf("intra-partition delivery dropped: %v", got)
	}
}

func TestDropScheduleIndependentOfEndpointCount(t *testing.T) {
	// The outage schedule keys on (seed, slot, receiver partition), so a
	// partition split across many endpoints experiences exactly the same
	// delays as the same partition behind a single endpoint — the
	// property the view-cohort simulator's oracle equivalence relies on.
	coarse := New[string](Config{Nodes: 2, GST: 0, Delay: 1, DropRate: 0.5, Seed: 42})
	coarse.SetPartition(1, 1)
	fine := New[string](Config{Nodes: 4, GST: 0, Delay: 1, DropRate: 0.5, Seed: 42})
	fine.SetPartition(1, 1)
	fine.SetPartition(2, 1)
	fine.SetPartition(3, 1)
	for i := 0; i < 50; i++ {
		coarse.Broadcast(0, types.Slot(i), "m")
		fine.Broadcast(0, types.Slot(i), "m")
	}
	for s := types.Slot(0); s < 60; s++ {
		want := len(coarse.Deliveries(1, s))
		for to := NodeID(1); to <= 3; to++ {
			if got := len(fine.Deliveries(to, s)); got != want {
				t.Fatalf("slot %d endpoint %d: %d deliveries, single-endpoint partition got %d", s, to, got, want)
			}
		}
	}
}

func TestDropNeverLosesMessages(t *testing.T) {
	// Best-effort broadcast: every message eventually arrives despite a
	// 50% outage rate on the receiver's link.
	n := New[string](Config{Nodes: 4, GST: 0, Delay: 1, DropRate: 0.5, Seed: 42})
	n.SetPartition(1, 1)
	const msgs = 100
	for i := 0; i < msgs; i++ {
		n.Broadcast(0, types.Slot(i), "m")
	}
	received := 0
	for s := types.Slot(0); s < msgs+10; s++ {
		received += len(n.Deliveries(1, s))
	}
	if received != msgs {
		t.Errorf("received %d of %d messages", received, msgs)
	}
}

func TestOutOfRangeNodesSafe(t *testing.T) {
	n := newNet(2, 100, 0)
	n.SetPartition(99, 1)
	n.SetBridging(99, true)
	if n.Partition(99) != 0 {
		t.Error("out-of-range partition should default to 0")
	}
	if got := n.Deliveries(99, 5); got != nil {
		t.Errorf("out-of-range deliveries = %v", got)
	}
	if n.PendingFor(99) != 0 {
		t.Error("out-of-range pending should be 0")
	}
	n.SendDirect(0, 99, 5, "x") // must not panic
}

func TestPendingFor(t *testing.T) {
	n := newNet(2, 1000, 1)
	n.Broadcast(0, 5, "a")
	n.Broadcast(0, 6, "b")
	if got := n.PendingFor(1); got != 2 {
		t.Errorf("pending = %d, want 2", got)
	}
	n.Deliveries(1, 6)
	if got := n.PendingFor(1); got != 1 {
		t.Errorf("pending after drain = %d, want 1", got)
	}
}

func TestDeterministicOrder(t *testing.T) {
	n := newNet(2, 1000, 0)
	n.Broadcast(0, 5, "first")
	n.Broadcast(0, 5, "second")
	got := n.Deliveries(1, 5)
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Errorf("delivery order = %v, want send order", got)
	}
}

// TestNeverHealingDropsUndeliverable pins the long-horizon memory
// contract: with GST = Never, cross-partition messages (which could only
// ever deliver at GST) are discarded at enqueue instead of accumulating,
// while intra-partition traffic is unaffected.
func TestNeverHealingDropsUndeliverable(t *testing.T) {
	n := New[int](Config{Nodes: 2, GST: Never, Delay: 1})
	n.SetPartition(0, 0)
	n.SetPartition(1, 1)
	n.Broadcast(0, 5, 42)
	if got := n.PendingFor(1); got != 0 {
		t.Errorf("cross-partition message held despite Never GST: %d pending", got)
	}
	if got := n.Deliveries(0, 6); len(got) != 1 || got[0] != 42 {
		t.Errorf("self/intra-partition delivery broken under Never: %v", got)
	}
	if n.Healed(1 << 61) {
		t.Error("a Never network must not heal")
	}
}

// TestNetworkCloneIsolatesInboxes pins the snapshot substrate: a cloned
// network shares no mutable delivery state with its original.
func TestNetworkCloneIsolatesInboxes(t *testing.T) {
	n := New[int](Config{Nodes: 2, Delay: 1})
	n.Broadcast(0, 1, 7)
	c := n.Clone()
	if got := n.Deliveries(1, 2); len(got) != 1 {
		t.Fatalf("original lost its delivery: %v", got)
	}
	if got := c.Deliveries(1, 2); len(got) != 1 || got[0] != 7 {
		t.Errorf("clone missing the in-flight delivery: %v", got)
	}
	sent, _ := c.Stats()
	if sent != 1 {
		t.Errorf("clone sent counter = %d, want 1", sent)
	}
}

// TestRetargetGSTMovesHeldBand pins the warm-start primitive: deliveries
// held for the old GST move to the same offset past the new one, with
// within-slot send order preserved and held traffic draining before
// anything already queued at the destination slot.
func TestRetargetGSTMovesHeldBand(t *testing.T) {
	n := New[int](Config{Nodes: 2, GST: FarFuture, Delay: 1})
	n.SetPartition(0, 0)
	n.SetPartition(1, 1)
	// Two cross-partition sends in order: both held at FarFuture + Delay.
	n.Broadcast(0, 3, 1)
	n.Broadcast(0, 5, 2)
	// A retransmission-style held delivery two slots deeper into the band.
	n.SendDirect(0, 1, FarFuture+3, 3)
	// Something already occupying the destination slot of the rebased band:
	// the held messages were sent earlier and must drain first.
	n.SendDirect(0, 1, 11, 99)

	n.RetargetGST(10)
	if got := n.GST(); got != 10 {
		t.Fatalf("GST() = %d after retarget, want 10", got)
	}
	if got := n.Deliveries(1, 11); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 99 {
		t.Errorf("rebased band at GST+Delay = %v, want [1 2 99]", got)
	}
	if got := n.Deliveries(1, 13); len(got) != 1 || got[0] != 3 {
		t.Errorf("held offset not preserved: %v, want [3]", got)
	}
	if !n.Healed(10) || n.Healed(9) {
		t.Error("reachability does not follow the retargeted GST")
	}
}

// TestRetargetGSTOntoNeverDiscards: rebasing held traffic onto Never must
// reproduce Never's enqueue-time discard semantics.
func TestRetargetGSTOntoNeverDiscards(t *testing.T) {
	n := New[int](Config{Nodes: 2, GST: FarFuture, Delay: 1})
	n.SetPartition(0, 0)
	n.SetPartition(1, 1)
	n.Broadcast(0, 2, 7)
	if got := n.PendingFor(1); got != 1 {
		t.Fatalf("FarFuture network should hold the cross-partition message, pending = %d", got)
	}
	n.RetargetGST(Never)
	if got := n.PendingFor(1); got != 0 {
		t.Errorf("retarget onto Never kept %d held messages", got)
	}
}
