package network

import (
	"sort"

	"repro/internal/codec"
	"repro/internal/types"
)

// EncodeTo serializes the network — configuration, partition and bridging
// maps, counters, and every held message — for the durable snapshot
// codec. The payload type is generic, so the caller supplies the message
// encoder. Inbox slots are written in sorted order and each slot's
// messages in delivery order (delivery order is observable state: the
// simulator fans batches out in listed order).
func (n *Network[M]) EncodeTo(w *codec.Writer, enc func(*codec.Writer, M)) {
	w.Int(n.cfg.Nodes)
	w.U64(uint64(n.cfg.GST))
	w.U64(uint64(n.cfg.Delay))
	w.F64(n.cfg.DropRate)
	w.U64(uint64(n.cfg.RetryDelay))
	w.I64(n.cfg.Seed)
	w.Len(len(n.partition))
	for _, p := range n.partition {
		w.Int(p)
	}
	w.Len(len(n.bridging))
	for _, b := range n.bridging {
		w.Bool(b)
	}
	w.Int(n.sent)
	w.Int(n.dropped)
	w.Len(len(n.inbox))
	for _, box := range n.inbox {
		slots := make([]types.Slot, 0, len(box))
		for s := range box {
			slots = append(slots, s)
		}
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
		w.Len(len(slots))
		for _, s := range slots {
			w.U64(uint64(s))
			msgs := box[s]
			w.Len(len(msgs))
			for _, m := range msgs {
				enc(w, m)
			}
		}
	}
}

// DecodeNetwork reconstructs a network serialized by EncodeTo. The
// configuration is restored verbatim (no constructor defaulting — a
// snapshotted RetryDelay of 2 decodes as 2, not as "0, defaulted later").
func DecodeNetwork[M any](r *codec.Reader, dec func(*codec.Reader) M) *Network[M] {
	n := &Network[M]{}
	n.cfg.Nodes = r.Int()
	n.cfg.GST = types.Slot(r.U64())
	n.cfg.Delay = types.Slot(r.U64())
	n.cfg.DropRate = r.F64()
	n.cfg.RetryDelay = types.Slot(r.U64())
	n.cfg.Seed = r.I64()
	np := r.Len()
	if r.Err() != nil {
		return nil
	}
	n.partition = make([]int, np)
	for i := 0; i < np; i++ {
		n.partition[i] = r.Int()
	}
	nb := r.Len()
	if r.Err() != nil {
		return nil
	}
	n.bridging = make([]bool, nb)
	for i := 0; i < nb; i++ {
		n.bridging[i] = r.Bool()
	}
	n.sent = r.Int()
	n.dropped = r.Int()
	ni := r.Len()
	if r.Err() != nil {
		return nil
	}
	n.inbox = make([]map[types.Slot][]M, ni)
	for i := 0; i < ni; i++ {
		ns := r.Len()
		if r.Err() != nil {
			return nil
		}
		box := make(map[types.Slot][]M, ns)
		for j := 0; j < ns; j++ {
			s := types.Slot(r.U64())
			nm := r.Len()
			if r.Err() != nil {
				return nil
			}
			msgs := make([]M, nm)
			for k := 0; k < nm; k++ {
				msgs[k] = dec(r)
			}
			box[s] = msgs
		}
		n.inbox[i] = box
	}
	if r.Err() != nil {
		return nil
	}
	return n
}
