// Package network simulates the message-passing layer of the paper's system
// model (Section 2): a best-effort broadcast over a partially synchronous
// network. Before GST the network may be split into partitions whose members
// cannot hear each other; within a partition (and globally after GST)
// message delay is bounded.
//
// Endpoints are abstract: the view-cohort simulator (internal/sim) attaches
// one endpoint per materialized view — a whole partition of honest
// validators shares one endpoint, because its members provably receive the
// same messages — while its per-validator oracle mode attaches one endpoint
// per validator. Nothing in this package assumes either granularity.
//
// Byzantine endpoints may be marked as bridging: they hear every partition
// and their messages reach every partition even before GST — the paper's
// strong adversary that "can coordinate Byzantine validators, even across
// network partitions". The adversary can additionally schedule
// point-to-point deliveries at chosen slots (SendDirect), which is what the
// probabilistic bouncing attack's withhold-and-release step needs.
//
// Failure injection uses a link-outage model: with probability DropRate,
// the inbound link of a partition is down for a slot, and every message
// sent into it that slot is retransmitted RetryDelay slots later.
// Intra-partition delivery is reliable (members of one partition share a
// view; there is no lossy link between them). Outages are derived from a
// deterministic hash of (seed, send slot, receiver partition), so the drop
// schedule is identical no matter how senders batch their messages or how
// many endpoints a partition is split into — the property that keeps the
// cohort simulator bit-identical to its per-validator oracle under loss.
package network

import (
	"sort"

	"repro/internal/types"
)

// NodeID identifies a network endpoint.
type NodeID = types.ValidatorIndex

// Never is a GST value meaning "partitions never heal". Any delivery
// scheduled at or after it can never occur within a run, so such messages
// are discarded at enqueue time instead of being held: a lasting-partition
// leak run to paper horizons would otherwise accumulate every
// cross-partition message of thousands of epochs in inboxes that are never
// drained. Semantically the two are identical for any run shorter than
// Never; dropping just returns the memory.
const Never types.Slot = 1 << 62

// FarFuture is a finite stand-in for "a GST later than any slot this run
// will reach". Unlike Never, deliveries scheduled against it are HELD in
// inboxes rather than discarded, which is what a shared-prefix simulation
// needs: a warm-start prefix runs with GST = FarFuture so every pre-GST
// cross-partition message survives into the snapshot, and a continuation
// restored from that snapshot rebases them onto its own heal slot with
// RetargetGST. Runs that truly never heal should keep using Never and its
// enqueue-time discard.
const FarFuture types.Slot = Never >> 1

// Config parameterizes a simulated network.
type Config struct {
	// Nodes is the number of endpoints (0..Nodes-1).
	Nodes int
	// GST is the slot at which partitions heal and delays become
	// uniformly bounded.
	GST types.Slot
	// Delay is the in-partition (and post-GST) delivery delay in slots.
	Delay types.Slot
	// DropRate is the probability that a partition's inbound link is down
	// for any given slot; messages sent into it that slot arrive
	// RetryDelay slots late.
	DropRate float64
	// RetryDelay is the extra delay of a retransmission (default 2).
	RetryDelay types.Slot
	// Seed feeds the deterministic link-outage schedule.
	Seed int64
}

// Network is a deterministic discrete-slot message bus. The zero value is
// not usable; construct with New.
type Network[M any] struct {
	cfg       Config
	partition []int
	bridging  []bool
	// inbox[node] maps delivery slot to the messages arriving then.
	inbox []map[types.Slot][]M
	// counters for metrics.
	sent, dropped int
}

// New creates a network with all endpoints in partition 0.
func New[M any](cfg Config) *Network[M] {
	if cfg.RetryDelay == 0 {
		cfg.RetryDelay = 2
	}
	n := &Network[M]{
		cfg:       cfg,
		partition: make([]int, cfg.Nodes),
		bridging:  make([]bool, cfg.Nodes),
		inbox:     make([]map[types.Slot][]M, cfg.Nodes),
	}
	for i := range n.inbox {
		n.inbox[i] = make(map[types.Slot][]M)
	}
	return n
}

// SetPartition assigns an endpoint to a partition. The partition scopes
// pre-GST reachability and identifies the endpoint's inbound link for the
// outage schedule.
func (n *Network[M]) SetPartition(node NodeID, p int) {
	if int(node) < len(n.partition) {
		n.partition[node] = p
	}
}

// Partition returns the partition of an endpoint.
func (n *Network[M]) Partition(node NodeID) int {
	if int(node) >= len(n.partition) {
		return 0
	}
	return n.partition[node]
}

// SetBridging marks an endpoint as partition-bridging (the Byzantine
// privilege).
func (n *Network[M]) SetBridging(node NodeID, b bool) {
	if int(node) < len(n.bridging) {
		n.bridging[node] = b
	}
}

// Healed reports whether partitions have healed at the given slot.
func (n *Network[M]) Healed(at types.Slot) bool { return at >= n.cfg.GST }

// Reachable reports whether a message sent by from at the given slot
// reaches to without waiting for GST.
func (n *Network[M]) Reachable(from, to NodeID, at types.Slot) bool {
	if from == to || n.Healed(at) {
		return true
	}
	if int(from) < len(n.bridging) && n.bridging[from] {
		return true
	}
	if int(to) < len(n.bridging) && n.bridging[to] {
		return true
	}
	return n.Partition(from) == n.Partition(to)
}

// linkDown reports whether the inbound link of partition p is down at the
// given slot: a deterministic splitmix64 hash of (seed, slot, partition)
// mapped to [0,1) and compared against DropRate.
func (n *Network[M]) linkDown(at types.Slot, p int) bool {
	if n.cfg.DropRate <= 0 {
		return false
	}
	z := uint64(n.cfg.Seed) ^ uint64(at)*0x9e3779b97f4a7c15 ^ uint64(int64(p))*0xbf58476d1ce4e5b9
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / float64(1<<53)
	return u < n.cfg.DropRate
}

// deliveryAt computes the arrival slot of a message sent at `at` from the
// sender's partition into the receiver's, given base reachability:
// unreachable messages are held until GST, and a cross-partition link
// outage adds the retransmission delay.
func (n *Network[M]) deliveryAt(at types.Slot, reachable bool, fromPartition, toPartition int) types.Slot {
	var deliverAt types.Slot
	if reachable {
		deliverAt = at + n.cfg.Delay
	} else {
		deliverAt = n.cfg.GST + n.cfg.Delay
	}
	if fromPartition != toPartition && n.linkDown(at, toPartition) {
		n.dropped++
		deliverAt += n.cfg.RetryDelay
	}
	return deliverAt
}

// Broadcast sends msg from endpoint `from` at slot `at` to every endpoint,
// including the sender (self-delivery also takes Delay, so that a slot's
// already-drained inbox is never appended to). Cross-partition messages
// before GST are held and delivered at GST + Delay, mirroring the partial
// synchrony guarantee that pre-GST messages arrive by GST + delta.
func (n *Network[M]) Broadcast(from NodeID, at types.Slot, msg M) {
	fromP := n.Partition(from)
	for node := 0; node < n.cfg.Nodes; node++ {
		to := NodeID(node)
		if to == from {
			n.enqueue(to, at+n.cfg.Delay, msg)
			continue
		}
		n.enqueue(to, n.deliveryAt(at, n.Reachable(from, to, at), fromP, n.Partition(to)), msg)
	}
	n.sent++
}

// BroadcastAs routes msg as if the sender were a non-bridging member of
// partition asPartition: members of that partition (and bridging receivers)
// get it after Delay, everyone else at GST + Delay. This is how a Byzantine
// validator shows one face per partition — its double votes reach only the
// intended partition before GST, yet partial synchrony still delivers every
// pre-GST message by GST + Delay, so evidence of equivocation eventually
// surfaces. Link outages still key on the sender's true partition.
func (n *Network[M]) BroadcastAs(from NodeID, asPartition int, at types.Slot, msg M) {
	fromP := n.Partition(from)
	for node := 0; node < n.cfg.Nodes; node++ {
		to := NodeID(node)
		if to == from {
			n.enqueue(to, at+n.cfg.Delay, msg)
			continue
		}
		reachable := n.Healed(at) ||
			n.Partition(to) == asPartition ||
			(int(to) < len(n.bridging) && n.bridging[to])
		n.enqueue(to, n.deliveryAt(at, reachable, fromP, n.Partition(to)), msg)
	}
	n.sent++
}

// SendDirect schedules a point-to-point delivery at an explicit slot,
// bypassing partition rules and link outages: the adversary's
// withhold-and-release primitive.
func (n *Network[M]) SendDirect(from, to NodeID, deliverAt types.Slot, msg M) {
	_ = from
	n.enqueue(to, deliverAt, msg)
	n.sent++
}

func (n *Network[M]) enqueue(to NodeID, at types.Slot, msg M) {
	if int(to) >= len(n.inbox) {
		return
	}
	// A delivery scheduled at or past Never can never happen; see Never.
	if at >= Never {
		return
	}
	n.inbox[to][at] = append(n.inbox[to][at], msg)
}

// Clone deep-copies the network's mutable state (in-flight inboxes and
// counters), so a snapshotted simulation can be restored mid-run. Message
// payloads are shared: the simulator treats sent messages as immutable.
func (n *Network[M]) Clone() *Network[M] {
	out := &Network[M]{
		cfg:       n.cfg,
		partition: append([]int(nil), n.partition...),
		bridging:  append([]bool(nil), n.bridging...),
		inbox:     make([]map[types.Slot][]M, len(n.inbox)),
		sent:      n.sent,
		dropped:   n.dropped,
	}
	for i, box := range n.inbox {
		cp := make(map[types.Slot][]M, len(box))
		for at, msgs := range box {
			cp[at] = append([]M(nil), msgs...)
		}
		out.inbox[i] = cp
	}
	return out
}

// GST returns the slot at which this network's partitions heal.
func (n *Network[M]) GST() types.Slot { return n.cfg.GST }

// RetargetGST rebases the network onto a new heal slot: every delivery held
// for the old GST (scheduled at or after oldGST + Delay — the band only
// held cross-partition messages occupy, since a regular delivery is always
// send slot + small delay) is moved to the same offset past the new GST,
// and future reachability checks use the new GST. Within-slot message
// order is preserved: held messages sharing a delivery slot move as one
// slice, and their new slots precede anything a post-retarget sender will
// enqueue — exactly the send-order interleaving a run with the new GST
// from slot 0 would have produced. Deliveries rebased to at or past Never
// are discarded, so retargeting onto Never reproduces its enqueue-time
// discard semantics.
//
// This is the warm-start primitive: a shared-prefix snapshot taken under
// GST = FarFuture is restored into a continuation whose config names the
// real heal slot, and sim.Restore calls RetargetGST to make the held
// traffic land where a cold run would have put it.
func (n *Network[M]) RetargetGST(gst types.Slot) {
	old := n.cfg.GST
	n.cfg.GST = gst
	if old == gst {
		return
	}
	oldBase := old + n.cfg.Delay
	newBase := gst + n.cfg.Delay
	type heldEntry struct {
		at   types.Slot
		msgs []M
	}
	for _, box := range n.inbox {
		// Two phases — collect the held band, then reinsert — so a moved
		// slot can never be mistaken for a still-to-move one, whichever
		// direction the retarget goes.
		var held []heldEntry
		for at, msgs := range box {
			if at >= oldBase {
				held = append(held, heldEntry{at, msgs})
			}
		}
		sort.Slice(held, func(i, j int) bool { return held[i].at < held[j].at })
		for _, h := range held {
			delete(box, h.at)
		}
		for _, h := range held {
			moved := newBase + (h.at - oldBase)
			if moved >= Never {
				continue
			}
			// A restored prefix has no regular in-flight delivery at or
			// past newBase yet, so prepending is only a safeguard: if
			// anything does occupy the slot, the held messages were sent
			// earlier and must drain first.
			box[moved] = append(h.msgs, box[moved]...)
		}
	}
}

// Deliveries drains and returns the messages arriving at endpoint `to` in
// slot `at`, in deterministic send order.
func (n *Network[M]) Deliveries(to NodeID, at types.Slot) []M {
	if int(to) >= len(n.inbox) {
		return nil
	}
	msgs := n.inbox[to][at]
	delete(n.inbox[to], at)
	return msgs
}

// PendingFor counts queued messages for an endpoint (metrics and tests).
func (n *Network[M]) PendingFor(to NodeID) int {
	if int(to) >= len(n.inbox) {
		return 0
	}
	total := 0
	for _, msgs := range n.inbox[to] {
		total += len(msgs)
	}
	return total
}

// Stats returns (messages sent, deliveries delayed by link outages).
func (n *Network[M]) Stats() (sent, dropped int) { return n.sent, n.dropped }
