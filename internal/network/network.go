// Package network simulates the message-passing layer of the paper's system
// model (Section 2): a best-effort broadcast over a partially synchronous
// network. Before GST the network may be split into partitions whose members
// cannot hear each other; within a partition (and globally after GST)
// message delay is bounded.
//
// Byzantine nodes may be marked as bridging: they hear every partition and
// their messages reach every partition even before GST — the paper's strong
// adversary that "can coordinate Byzantine validators, even across network
// partitions". The adversary can additionally schedule point-to-point
// deliveries at chosen slots (SendDirect), which is what the probabilistic
// bouncing attack's withhold-and-release step needs.
//
// Failure injection: a drop rate can be configured; dropped deliveries are
// retransmitted with extra delay, preserving the best-effort-broadcast
// guarantee that messages between correct processes are eventually
// delivered.
package network

import (
	"math/rand"

	"repro/internal/types"
)

// NodeID identifies a network node; the simulator gives each validator its
// own node.
type NodeID = types.ValidatorIndex

// Config parameterizes a simulated network.
type Config struct {
	// Nodes is the number of nodes (0..Nodes-1).
	Nodes int
	// GST is the slot at which partitions heal and delays become
	// uniformly bounded.
	GST types.Slot
	// Delay is the in-partition (and post-GST) delivery delay in slots.
	// Delay 0 delivers in the sending slot.
	Delay types.Slot
	// DropRate is the probability that any single delivery is dropped on
	// first attempt and retransmitted RetryDelay slots later.
	DropRate float64
	// RetryDelay is the extra delay of a retransmission (default 2).
	RetryDelay types.Slot
	// Seed feeds the deterministic drop RNG.
	Seed int64
}

// Network is a deterministic discrete-slot message bus. The zero value is
// not usable; construct with New.
type Network[M any] struct {
	cfg       Config
	partition []int
	bridging  []bool
	// inbox[node] maps delivery slot to the messages arriving then.
	inbox []map[types.Slot][]M
	rng   *rand.Rand
	// counters for metrics.
	sent, dropped int
}

// New creates a network with all nodes in partition 0.
func New[M any](cfg Config) *Network[M] {
	if cfg.RetryDelay == 0 {
		cfg.RetryDelay = 2
	}
	n := &Network[M]{
		cfg:       cfg,
		partition: make([]int, cfg.Nodes),
		bridging:  make([]bool, cfg.Nodes),
		inbox:     make([]map[types.Slot][]M, cfg.Nodes),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := range n.inbox {
		n.inbox[i] = make(map[types.Slot][]M)
	}
	return n
}

// SetPartition assigns node to a partition (effective before GST only).
func (n *Network[M]) SetPartition(node NodeID, p int) {
	if int(node) < len(n.partition) {
		n.partition[node] = p
	}
}

// Partition returns the partition of node.
func (n *Network[M]) Partition(node NodeID) int {
	if int(node) >= len(n.partition) {
		return 0
	}
	return n.partition[node]
}

// SetBridging marks node as partition-bridging (the Byzantine privilege).
func (n *Network[M]) SetBridging(node NodeID, b bool) {
	if int(node) < len(n.bridging) {
		n.bridging[node] = b
	}
}

// Healed reports whether partitions have healed at the given slot.
func (n *Network[M]) Healed(at types.Slot) bool { return at >= n.cfg.GST }

// Reachable reports whether a message sent by from at the given slot
// reaches to without waiting for GST.
func (n *Network[M]) Reachable(from, to NodeID, at types.Slot) bool {
	if from == to || n.Healed(at) {
		return true
	}
	if int(from) < len(n.bridging) && n.bridging[from] {
		return true
	}
	if int(to) < len(n.bridging) && n.bridging[to] {
		return true
	}
	return n.Partition(from) == n.Partition(to)
}

// Broadcast sends msg from node `from` at slot `at` to every node,
// including the sender (self-delivery also takes Delay, so that a slot's
// already-drained inbox is never appended to). Cross-partition messages
// before GST are held and delivered at GST + Delay, mirroring the partial
// synchrony guarantee that pre-GST messages arrive by GST + delta.
func (n *Network[M]) Broadcast(from NodeID, at types.Slot, msg M) {
	for node := 0; node < n.cfg.Nodes; node++ {
		to := NodeID(node)
		if to == from {
			n.enqueue(to, at+n.cfg.Delay, msg)
			continue
		}
		var deliverAt types.Slot
		if n.Reachable(from, to, at) {
			deliverAt = at + n.cfg.Delay
		} else {
			deliverAt = n.cfg.GST + n.cfg.Delay
		}
		if n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate {
			n.dropped++
			deliverAt += n.cfg.RetryDelay
		}
		n.enqueue(to, deliverAt, msg)
	}
	n.sent++
}

// BroadcastAs routes msg as if the sender were a non-bridging member of
// partition asPartition: members of that partition (and bridging receivers)
// get it after Delay, everyone else at GST + Delay. This is how a Byzantine
// validator shows one face per partition — its double votes reach only the
// intended partition before GST, yet partial synchrony still delivers every
// pre-GST message by GST + Delay, so evidence of equivocation eventually
// surfaces.
func (n *Network[M]) BroadcastAs(from NodeID, asPartition int, at types.Slot, msg M) {
	for node := 0; node < n.cfg.Nodes; node++ {
		to := NodeID(node)
		if to == from {
			n.enqueue(to, at+n.cfg.Delay, msg)
			continue
		}
		reachable := n.Healed(at) ||
			n.Partition(to) == asPartition ||
			(int(to) < len(n.bridging) && n.bridging[to])
		var deliverAt types.Slot
		if reachable {
			deliverAt = at + n.cfg.Delay
		} else {
			deliverAt = n.cfg.GST + n.cfg.Delay
		}
		if n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate {
			n.dropped++
			deliverAt += n.cfg.RetryDelay
		}
		n.enqueue(to, deliverAt, msg)
	}
	n.sent++
}

// SendDirect schedules a point-to-point delivery at an explicit slot,
// bypassing partition rules: the adversary's withhold-and-release
// primitive.
func (n *Network[M]) SendDirect(from, to NodeID, deliverAt types.Slot, msg M) {
	_ = from
	n.enqueue(to, deliverAt, msg)
	n.sent++
}

func (n *Network[M]) enqueue(to NodeID, at types.Slot, msg M) {
	if int(to) >= len(n.inbox) {
		return
	}
	n.inbox[to][at] = append(n.inbox[to][at], msg)
}

// Deliveries drains and returns the messages arriving at node `to` in slot
// `at`, in deterministic send order.
func (n *Network[M]) Deliveries(to NodeID, at types.Slot) []M {
	if int(to) >= len(n.inbox) {
		return nil
	}
	msgs := n.inbox[to][at]
	delete(n.inbox[to], at)
	return msgs
}

// PendingFor counts queued messages for a node (metrics and tests).
func (n *Network[M]) PendingFor(to NodeID) int {
	if int(to) >= len(n.inbox) {
		return 0
	}
	total := 0
	for _, msgs := range n.inbox[to] {
		total += len(msgs)
	}
	return total
}

// Stats returns (messages sent, first-attempt drops).
func (n *Network[M]) Stats() (sent, dropped int) { return n.sent, n.dropped }
