package sim

import (
	"reflect"
	"testing"

	"repro/internal/network"
	"repro/internal/types"
)

// snapshotCfg is a state-rich configuration: partitioned population under
// a compressed leak with link outages and shuffled duties, so a snapshot
// must carry diverging FFG state, in-flight (and retransmitted) messages,
// embargoes, and per-epoch duty shuffling to reproduce the run.
func snapshotCfg(perValidator, oracleForkChoice bool) Config {
	return Config{
		Validators: 16, Spec: types.CompressedSpec(1 << 16),
		GST: 1 << 30, Delay: 1, Seed: 13, DropRate: 0.15,
		ShuffledDuties: true, PartitionOf: halfSplit(16),
		PerValidatorViews: perValidator, OracleForkChoice: oracleForkChoice,
	}
}

// runRecorded advances the sim by `epochs` whole epochs, returning one
// EpochMetrics per boundary crossed.
func runRecorded(t *testing.T, s *Simulation, epochs int) []EpochMetrics {
	t.Helper()
	var hist []EpochMetrics
	start := s.Slot().Epoch()
	for e := 0; e < epochs; e++ {
		if err := s.RunEpochs(1); err != nil {
			t.Fatal(err)
		}
		hist = append(hist, s.MetricsAt(start+types.Epoch(e+1)))
	}
	return hist
}

// TestSnapshotRestoreDeterminism is the snapshot contract: Restore of a
// Snapshot taken at epoch k, then running to epoch n, yields EpochMetrics
// bit-identical to the uninterrupted run — across the 2×2 view-layout ×
// fork-choice-engine matrix.
func TestSnapshotRestoreDeterminism(t *testing.T) {
	const snapAt, total = 6, 20
	modes := []struct {
		name                           string
		perValidator, oracleForkChoice bool
	}{
		{"cohort+proto-array", false, false},
		{"cohort+map-oracle", false, true},
		{"per-validator+proto-array", true, false},
		{"per-validator+map-oracle", true, true},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			cfg := snapshotCfg(mode.perValidator, mode.oracleForkChoice)

			base, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			prefix := runRecorded(t, base, snapAt)
			snap := base.Snapshot()
			if got, want := snap.Slot(), types.Epoch(snapAt).StartSlot(); got != want {
				t.Fatalf("snapshot slot = %d, want %d", got, want)
			}
			suffix := runRecorded(t, base, total-snapAt)
			want := append(append([]EpochMetrics(nil), prefix...), suffix...)

			// An uninterrupted reference run.
			ref, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			uninterrupted := runRecorded(t, ref, total)
			if !reflect.DeepEqual(uninterrupted, want) {
				t.Fatalf("taking a snapshot perturbed the run:\n  with snapshot: %+v\n  without:       %+v", want, uninterrupted)
			}

			// Restore the mutated base back to epoch k and re-run: the
			// suffix must reproduce bit-identically, twice in a row (the
			// snapshot is not consumed by Restore).
			for round := 0; round < 2; round++ {
				if err := base.Restore(snap); err != nil {
					t.Fatal(err)
				}
				if got := base.Slot(); got != snap.Slot() {
					t.Fatalf("restored slot = %d, want %d", got, snap.Slot())
				}
				replay := runRecorded(t, base, total-snapAt)
				if !reflect.DeepEqual(replay, suffix) {
					t.Fatalf("round %d: restored run diverged:\n  replay: %+v\n  want:   %+v", round, replay, suffix)
				}
			}
		})
	}
}

// TestSnapshotIsolation pins the fan-out property warm-started sweeps rely
// on: two continuations restored from one snapshot do not share mutable
// state — running one to conflict does not disturb the other.
func TestSnapshotIsolation(t *testing.T) {
	cfg := snapshotCfg(false, false)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(4); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	before := s.MetricsAt(4)

	// Continuation A: run far enough that the compressed leak finalizes
	// conflicting branches (mutating trees, registries, FFG state).
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(26); err != nil {
		t.Fatal(err)
	}
	if v := s.CheckFinalitySafety(); v == nil {
		t.Fatal("compressed 50/50 partition should have finalized conflicting branches by epoch 30")
	}

	// Continuation B: the snapshot must still describe epoch 4.
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := s.MetricsAt(4); !reflect.DeepEqual(got, before) {
		t.Fatalf("snapshot state mutated by a continuation: %+v != %+v", got, before)
	}
	if v := s.CheckFinalitySafety(); v != nil {
		t.Fatalf("restored epoch-4 state already reports a violation: %v", v)
	}
}

// TestRestoreRejectsMismatchedShape guards against restoring a snapshot
// into a simulation with a different validator set or cohort layout.
func TestRestoreRejectsMismatchedShape(t *testing.T) {
	a, err := New(snapshotCfg(false, false))
	if err != nil {
		t.Fatal(err)
	}
	other, err := New(Config{Validators: 8, Spec: types.CompressedSpec(1 << 16), Delay: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(a.Snapshot()); err == nil {
		t.Fatal("Restore accepted a snapshot with a mismatched shape")
	}
}

// TestRestoreAcrossGST pins GST portability, the property that lets one
// shared prefix fan out across a gst sweep: a prefix simulated under
// GST = network.FarFuture (held cross-partition traffic retained),
// snapshotted before the heal, and restored into a simulation whose
// Config names the real heal slot reproduces the cold run with that GST
// bit-identically.
func TestRestoreAcrossGST(t *testing.T) {
	const snapAt, total = 3, 12
	realGST := types.Epoch(5).StartSlot()

	cold := snapshotCfg(false, false)
	cold.GST = realGST
	ref, err := New(cold)
	if err != nil {
		t.Fatal(err)
	}
	want := runRecorded(t, ref, total)

	prefixCfg := cold
	prefixCfg.GST = network.FarFuture
	prefix, err := New(prefixCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := prefix.RunEpochs(snapAt); err != nil {
		t.Fatal(err)
	}
	snap := prefix.Snapshot()
	if snap.Bytes() <= 0 {
		t.Fatalf("snapshot footprint = %d bytes, want > 0", snap.Bytes())
	}

	warm, err := New(cold)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got := make([]EpochMetrics, 0, total)
	for e := 0; e < snapAt; e++ {
		got = append(got, warm.MetricsAt(types.Epoch(e+1)))
	}
	got = append(got, runRecorded(t, warm, total-snapAt)...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FarFuture prefix + Restore diverges from the cold GST run:\n  warm: %+v\n  cold: %+v", got, want)
	}
}
