package sim

import (
	"testing"

	"repro/internal/types"
)

func TestRecorderOnHealthyChain(t *testing.T) {
	rec := &Recorder{}
	cfg := healthyConfig(8)
	cfg.OnEpoch = rec.Hook
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(6); err != nil {
		t.Fatal(err)
	}
	if len(rec.History) != 5 {
		t.Fatalf("history = %d entries, want 5 (epochs 1-5)", len(rec.History))
	}
	last := rec.History[len(rec.History)-1]
	if last.MaxFinalized < 3 || last.MinFinalized != last.MaxFinalized {
		t.Errorf("healthy finality metrics: %+v", last)
	}
	if last.InLeak != 0 {
		t.Errorf("healthy chain reports %d views in leak", last.InLeak)
	}
	if last.MinTotalStake != last.MaxTotalStake {
		t.Error("healthy views must agree on total stake")
	}
	if rec.FinalityStalledSince() != 0 {
		t.Errorf("finality advancing but stall = %d", rec.FinalityStalledSince())
	}
}

func TestRecorderDetectsStall(t *testing.T) {
	rec := &Recorder{}
	cfg := healthyConfig(16)
	cfg.GST = 1 << 30
	cfg.PartitionOf = halfSplit(16)
	cfg.OnEpoch = rec.Hook
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(8); err != nil {
		t.Fatal(err)
	}
	if got := rec.FinalityStalledSince(); got < 5 {
		t.Errorf("stall = %d epochs, want >= 5 under a lasting partition", got)
	}
	last := rec.History[len(rec.History)-1]
	if last.InLeak != 16 {
		t.Errorf("views in leak = %d, want all 16", last.InLeak)
	}
}

func TestSnapshotByzProportion(t *testing.T) {
	cfg := healthyConfig(8)
	cfg.Byzantine = []types.ValidatorIndex{6, 7}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := s.MetricsAt(0)
	if m.MaxByzProportion != 0.25 {
		t.Errorf("byz proportion = %v, want 0.25", m.MaxByzProportion)
	}
}

func TestFinalityStalledSinceEmpty(t *testing.T) {
	rec := &Recorder{}
	if rec.FinalityStalledSince() != 0 {
		t.Error("empty history must report no stall")
	}
}
