package sim

import (
	"reflect"
	"testing"

	"repro/internal/network"
	"repro/internal/types"
)

// recordHistory runs cfg for the given number of epochs with a metrics
// recorder installed and returns the per-epoch history plus the epoch of
// the first detected safety violation (0 = none).
func recordHistory(t *testing.T, cfg Config, epochs int) ([]EpochMetrics, types.Epoch) {
	t.Helper()
	rec := &Recorder{}
	prev := cfg.OnEpoch
	cfg.OnEpoch = func(s *Simulation, e types.Epoch) {
		rec.Hook(s, e)
		if prev != nil {
			prev(s, e)
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var violation types.Epoch
	for e := 1; e <= epochs; e++ {
		if err := s.RunEpochs(1); err != nil {
			t.Fatal(err)
		}
		if violation == 0 {
			if v := s.CheckFinalitySafety(); v != nil {
				violation = types.Epoch(e)
			}
		}
	}
	return rec.History, violation
}

// TestCohortKernelMatchesPerValidatorOracle is the refactor's contract: the
// view-cohort kernel and the pre-refactor one-node-per-validator layout
// (PerValidatorViews, retained as the oracle) produce bit-identical
// EpochMetrics histories — across partitions, link outages, shuffled
// duties, delays, and idle Byzantine bridges — because cohort members
// provably hold identical views.
func TestCohortKernelMatchesPerValidatorOracle(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		epochs int
	}{
		{
			name: "healthy synchronous",
			cfg: Config{
				Validators: 16, Spec: types.DefaultSpec(), Delay: 1, Seed: 1,
			},
			epochs: 8,
		},
		{
			name: "healthy delay 2",
			cfg: Config{
				Validators: 16, Spec: types.DefaultSpec(), Delay: 2, Seed: 5,
			},
			epochs: 8,
		},
		{
			name: "lasting 50/50 partition (compressed leak to conflict)",
			cfg: Config{
				Validators: 16, Spec: types.CompressedSpec(1 << 16),
				GST: 1 << 30, Delay: 1, Seed: 3, PartitionOf: halfSplit(16),
			},
			epochs: 30,
		},
		{
			name: "uneven three-way partition",
			cfg: Config{
				Validators: 18, Spec: types.CompressedSpec(1 << 16),
				GST: 1 << 30, Delay: 1, Seed: 11,
				PartitionOf: func(v types.ValidatorIndex) int {
					switch {
					case v < 9:
						return 0
					case v < 15:
						return 1
					default:
						return 2
					}
				},
			},
			epochs: 16,
		},
		{
			name: "partition heals at GST",
			cfg: Config{
				Validators: 16, Spec: types.CompressedSpec(1 << 16),
				GST: 8 * 32, Delay: 1, Seed: 3, PartitionOf: halfSplit(16),
			},
			epochs: 16,
		},
		{
			name: "link outages across four synchronous partitions",
			cfg: Config{
				Validators: 16, Spec: types.DefaultSpec(), Delay: 1, Seed: 7,
				DropRate:    0.2,
				PartitionOf: func(v types.ValidatorIndex) int { return int(v) % 4 },
			},
			epochs: 10,
		},
		{
			name: "partition with drops and shuffled duties",
			cfg: Config{
				Validators: 16, Spec: types.CompressedSpec(1 << 16),
				GST: 1 << 30, Delay: 1, Seed: 13, DropRate: 0.15,
				ShuffledDuties: true, PartitionOf: halfSplit(16),
			},
			epochs: 24,
		},
		{
			name: "shuffled duties healthy",
			cfg: Config{
				Validators: 24, Spec: types.DefaultSpec(), Delay: 1, Seed: 9,
				ShuffledDuties: true,
			},
			epochs: 8,
		},
		{
			// A never-healing partition with an aggressive watermark: the
			// compaction gates (no adversary, lossless links, GST = Never)
			// all pass, so trees fold every epoch past the retention window
			// in all four view/engine modes.
			name: "lasting partition with aggressive spine compaction",
			cfg: Config{
				Validators: 16, Spec: types.CompressedSpec(1 << 16),
				GST: network.Never, Delay: 1, Seed: 3,
				PartitionOf: halfSplit(16), CompactWatermark: 32,
			},
			epochs: 30,
		},
		{
			name: "idle byzantine bridges during partition",
			cfg: Config{
				Validators: 16, Spec: types.CompressedSpec(1 << 16),
				GST: 1 << 30, Delay: 1, Seed: 17,
				Byzantine:   []types.ValidatorIndex{3, 12},
				PartitionOf: halfSplit(16),
			},
			epochs: 16,
		},
	}

	// Both oracle axes are exercised: view layout (cohort vs singleton
	// per-validator) and fork-choice engine (incremental proto-array vs
	// map-based recompute oracle). All four combinations must produce the
	// same bit-identical history.
	modes := []struct {
		name                           string
		perValidator, oracleForkChoice bool
	}{
		{"cohort+proto-array", false, false},
		{"cohort+map-oracle", false, true},
		{"per-validator+proto-array", true, false},
		{"per-validator+map-oracle", true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			refCfg := tc.cfg
			refCfg.PerValidatorViews = modes[0].perValidator
			refCfg.OracleForkChoice = modes[0].oracleForkChoice
			want, wantViolation := recordHistory(t, refCfg, tc.epochs)

			for _, mode := range modes[1:] {
				cfg := tc.cfg
				cfg.PerValidatorViews = mode.perValidator
				cfg.OracleForkChoice = mode.oracleForkChoice
				got, gotViolation := recordHistory(t, cfg, tc.epochs)

				if len(got) != len(want) {
					t.Fatalf("history lengths differ: %s %d, %s %d", mode.name, len(got), modes[0].name, len(want))
				}
				for i := range got {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Fatalf("epoch %d metrics diverge:\n  %s: %+v\n  %s: %+v",
							want[i].Epoch, mode.name, got[i], modes[0].name, want[i])
					}
				}
				if gotViolation != wantViolation {
					t.Fatalf("safety violation epoch: %s %d, %s %d", mode.name, gotViolation, modes[0].name, wantViolation)
				}
			}
		})
	}
}

// TestCohortKernelSharesViews pins the memory shape the refactor is for:
// at any honest population in one partition, the kernel materializes
// exactly one view (plus one per extra partition and one Byzantine),
// regardless of validator count.
func TestCohortKernelSharesViews(t *testing.T) {
	cfg := healthyConfig(512)
	cfg.Byzantine = []types.ValidatorIndex{510, 511}
	cfg.PartitionOf = halfSplit(512)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Cohorts()); got != 3 {
		t.Fatalf("512 validators materialized %d views, want 3", got)
	}
	if err := s.RunEpochs(2); err != nil {
		t.Fatal(err)
	}
}

// TestCompactionDoesNotChangeHistory is the tentpole's equivalence bar at
// the simulation layer: spine compaction is a pure space optimization —
// running the paper's lasting-partition leak with an aggressive watermark
// produces the bit-identical per-epoch history and safety-violation epoch
// as the same run with compaction disabled.
func TestCompactionDoesNotChangeHistory(t *testing.T) {
	base := Config{
		Validators: 16, Spec: types.CompressedSpec(1 << 16),
		GST: network.Never, Delay: 1, Seed: 3, PartitionOf: halfSplit(16),
	}
	const epochs = 30

	off := base
	off.CompactWatermark = -1
	want, wantViolation := recordHistory(t, off, epochs)
	if wantViolation == 0 {
		t.Fatal("reference run never violated finality safety; the scenario lost its teeth")
	}

	on := base
	on.CompactWatermark = 32
	got, gotViolation := recordHistory(t, on, epochs)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("epoch %d metrics diverge under compaction:\n  compacted:  %+v\n  uncompacted: %+v",
				want[i].Epoch, got[i], want[i])
		}
	}
	if gotViolation != wantViolation {
		t.Fatalf("violation epoch: compacted %d, uncompacted %d", gotViolation, wantViolation)
	}

	// And the optimization actually engaged: the compacted run's trees
	// must have folded blocks, otherwise this test pins nothing.
	s, err := New(on)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(epochs); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Tree.Folded == 0 {
		t.Fatalf("compaction never fired (stats %+v); gates or watermark are wrong", st)
	}
}

// TestSnapshotRestoreReplaysCompactedRun: Restore(Snapshot()) taken from a
// mid-leak, already-compacted simulation replays the continuation
// bit-identically — skip segments, fold counters, and engine columns all
// survive the deep copy.
func TestSnapshotRestoreReplaysCompactedRun(t *testing.T) {
	cfg := Config{
		Validators: 16, Spec: types.CompressedSpec(1 << 16),
		GST: network.Never, Delay: 1, Seed: 3,
		PartitionOf: halfSplit(16), CompactWatermark: 32,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(15); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Tree.Folded == 0 {
		t.Fatalf("run not compacted at snapshot point (stats %+v)", st)
	}
	sn := s.Snapshot()

	run := func() []EpochMetrics {
		rec := &Recorder{}
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.Cfg.OnEpoch = rec.Hook
		if err := r.Restore(sn); err != nil {
			t.Fatal(err)
		}
		if err := r.RunEpochs(15); err != nil {
			t.Fatal(err)
		}
		return rec.History
	}
	want := run()
	got := run()
	if len(want) == 0 {
		t.Fatal("no epochs recorded after restore")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("two restores of the same compacted snapshot diverge")
	}
	// The original keeps running independently of its snapshot's clones.
	if err := s.RunEpochs(15); err != nil {
		t.Fatal(err)
	}
}
