package sim

import (
	"testing"

	"repro/internal/incentives"
	"repro/internal/types"
	"repro/internal/validator"
)

// benchmarkSimEpoch measures the cost of one healthy-network protocol
// epoch under the given configuration (one warm-up epoch excluded).
func benchmarkSimEpoch(b *testing.B, cfg Config) {
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.RunEpochs(1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RunEpochs(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEpoch is the kernel's hot-path record. The view-cohort
// kernel runs 10,000 (and 100,000) validators per epoch at or below the
// per-epoch wall-clock the pre-refactor one-node-per-validator layout
// (the oracle sub-benchmark) needs for 200 — the >= 50x capacity jump the
// refactor is for.
func BenchmarkSimEpoch(b *testing.B) {
	b.Run("cohort-10000", func(b *testing.B) {
		benchmarkSimEpoch(b, healthyConfig(10000))
	})
	b.Run("cohort-100000", func(b *testing.B) {
		benchmarkSimEpoch(b, healthyConfig(100000))
	})
	b.Run("cohort-partitioned-20000", func(b *testing.B) {
		benchmarkSimEpoch(b, Config{
			Validators: 20000, Spec: types.CompressedSpec(1 << 16),
			GST: 1 << 30, Delay: 1, Seed: 3, PartitionOf: halfSplit(20000),
		})
	})
	b.Run("per-validator-oracle-200", func(b *testing.B) {
		cfg := healthyConfig(200)
		cfg.PerValidatorViews = true
		benchmarkSimEpoch(b, cfg)
	})
}

// BenchmarkCohortRegistry measures the columnar registry's epoch-boundary
// sweep — penalties, scores, ejections, and post-state measurement over
// flat stake/score/status slices — at paper scale (1M validators), plus
// the Clone a justified-checkpoint snapshot costs.
func BenchmarkCohortRegistry(b *testing.B) {
	const n = 1_000_000
	spec := types.DefaultSpec()
	engine := incentives.Engine{Spec: spec}
	active := func(v types.ValidatorIndex) bool { return v%2 == 0 }

	b.Run("process-epoch-leak", func(b *testing.B) {
		reg := validator.NewRegistry(n, spec.MaxEffectiveBalance)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			engine.ProcessEpoch(reg, active, true, types.Epoch(i+1))
		}
	})
	b.Run("clone", func(b *testing.B) {
		reg := validator.NewRegistry(n, spec.MaxEffectiveBalance)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if reg.Clone().Len() != n {
				b.Fatal("clone lost validators")
			}
		}
	})
	b.Run("total-stake", func(b *testing.B) {
		reg := validator.NewRegistry(n, spec.MaxEffectiveBalance)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if reg.TotalStake() == 0 {
				b.Fatal("empty registry")
			}
		}
	})
}
