package sim

import (
	"testing"

	"repro/internal/incentives"
	"repro/internal/network"
	"repro/internal/types"
	"repro/internal/validator"
)

// benchmarkSimEpoch measures the cost of one healthy-network protocol
// epoch under the given configuration (one warm-up epoch excluded).
func benchmarkSimEpoch(b *testing.B, cfg Config) {
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.RunEpochs(1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RunEpochs(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEpoch is the kernel's hot-path record. The view-cohort
// kernel runs 10,000 (and 100,000) validators per epoch at or below the
// per-epoch wall-clock the pre-refactor one-node-per-validator layout
// (the oracle sub-benchmark) needs for 200 — the >= 50x capacity jump the
// refactor is for.
func BenchmarkSimEpoch(b *testing.B) {
	b.Run("cohort-10000", func(b *testing.B) {
		benchmarkSimEpoch(b, healthyConfig(10000))
	})
	b.Run("cohort-100000", func(b *testing.B) {
		benchmarkSimEpoch(b, healthyConfig(100000))
	})
	b.Run("cohort-partitioned-20000", func(b *testing.B) {
		benchmarkSimEpoch(b, Config{
			Validators: 20000, Spec: types.CompressedSpec(1 << 16),
			GST: 1 << 30, Delay: 1, Seed: 3, PartitionOf: halfSplit(20000),
		})
	})
	b.Run("per-validator-oracle-200", func(b *testing.B) {
		cfg := healthyConfig(200)
		cfg.PerValidatorViews = true
		benchmarkSimEpoch(b, cfg)
	})
}

// BenchmarkSimLongHorizon is the paper-horizon workload: the Table 1
// Scenario 5.1 simulation — 10,000 validators, FULL spec (2^26 penalty
// quotient), lasting 50/50 partition that never heals — advanced from a
// mid-leak state. The sim/leak scenario runs this for ~4,660 epochs;
// the sustained epochs/sec here is what bounds its wall clock (BENCH.md
// tracks the trajectory).
func BenchmarkSimLongHorizon(b *testing.B) {
	s, err := New(Config{
		Validators: 10000, Spec: types.DefaultSpec(),
		GST: network.Never, Delay: 1, Seed: 1, PartitionOf: halfSplit(10000),
	})
	if err != nil {
		b.Fatal(err)
	}
	// Enter the leak (finality stalls after MinEpochsToInactivityLeak).
	if err := s.RunEpochs(6); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RunEpochs(1); err != nil {
			b.Fatal(err)
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "epochs/sec")
	}
}

// BenchmarkCohortRegistry measures the columnar registry's epoch-boundary
// sweep — penalties, scores, ejections, and post-state measurement over
// flat stake/score/status slices — at paper scale (1M validators), plus
// the Clone a justified-checkpoint snapshot costs.
func BenchmarkCohortRegistry(b *testing.B) {
	const n = 1_000_000
	spec := types.DefaultSpec()
	engine := incentives.Engine{Spec: spec}
	active := func(v types.ValidatorIndex) bool { return v%2 == 0 }

	b.Run("process-epoch-leak", func(b *testing.B) {
		reg := validator.NewRegistry(n, spec.MaxEffectiveBalance)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			engine.ProcessEpoch(reg, active, true, types.Epoch(i+1))
		}
	})
	b.Run("clone", func(b *testing.B) {
		reg := validator.NewRegistry(n, spec.MaxEffectiveBalance)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if reg.Clone().Len() != n {
				b.Fatal("clone lost validators")
			}
		}
	})
	b.Run("total-stake", func(b *testing.B) {
		reg := validator.NewRegistry(n, spec.MaxEffectiveBalance)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if reg.TotalStake() == 0 {
				b.Fatal("empty registry")
			}
		}
	})
}
