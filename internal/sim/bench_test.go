package sim

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/incentives"
	"repro/internal/network"
	"repro/internal/types"
	"repro/internal/validator"
)

// benchmarkSimEpoch measures the cost of one healthy-network protocol
// epoch under the given configuration (one warm-up epoch excluded).
func benchmarkSimEpoch(b *testing.B, cfg Config) {
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.RunEpochs(1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RunEpochs(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEpoch is the kernel's hot-path record. The view-cohort
// kernel runs 10,000 (and 100,000) validators per epoch at or below the
// per-epoch wall-clock the pre-refactor one-node-per-validator layout
// (the oracle sub-benchmark) needs for 200 — the >= 50x capacity jump the
// refactor is for.
func BenchmarkSimEpoch(b *testing.B) {
	b.Run("cohort-10000", func(b *testing.B) {
		benchmarkSimEpoch(b, healthyConfig(10000))
	})
	b.Run("cohort-100000", func(b *testing.B) {
		benchmarkSimEpoch(b, healthyConfig(100000))
	})
	b.Run("cohort-partitioned-20000", func(b *testing.B) {
		benchmarkSimEpoch(b, Config{
			Validators: 20000, Spec: types.CompressedSpec(1 << 16),
			GST: 1 << 30, Delay: 1, Seed: 3, PartitionOf: halfSplit(20000),
		})
	})
	b.Run("per-validator-oracle-200", func(b *testing.B) {
		cfg := healthyConfig(200)
		cfg.PerValidatorViews = true
		benchmarkSimEpoch(b, cfg)
	})
}

// longHorizonConfig is the paper-horizon workload: the Table 1 Scenario
// 5.1 simulation — 10,000 validators, FULL spec (2^26 penalty quotient),
// lasting 50/50 partition that never heals.
func longHorizonConfig() Config {
	return Config{
		Validators: 10000, Spec: types.DefaultSpec(),
		GST: network.Never, Delay: 1, Seed: 1, PartitionOf: halfSplit(10000),
	}
}

// longHorizonDepths are the leak depths (epochs into the run) at which
// BenchmarkSimLongHorizon measures sustained throughput. Before spine
// compaction the deeper variants decayed with tree size; with it they
// must stay within 20% of depth-100 (CI gates the ratio).
var longHorizonDepths = [...]int{100, 2000, 4000}

// longHorizon lazily runs ONE simulation forward through the leak,
// snapshotting at each measurement depth, so the three depth variants
// fast-forward via Restore instead of each paying the full prefix.
var longHorizon struct {
	once  sync.Once
	err   error
	snaps map[int]*Snapshot
}

func longHorizonSnapshotAt(b *testing.B, depth int) *Snapshot {
	longHorizon.once.Do(func() {
		s, err := New(longHorizonConfig())
		if err != nil {
			longHorizon.err = err
			return
		}
		longHorizon.snaps = make(map[int]*Snapshot, len(longHorizonDepths))
		cur := 0
		for _, d := range longHorizonDepths {
			if err := s.RunEpochs(d - cur); err != nil {
				longHorizon.err = err
				return
			}
			cur = d
			longHorizon.snaps[d] = s.Snapshot()
		}
	})
	if longHorizon.err != nil {
		b.Fatal(longHorizon.err)
	}
	return longHorizon.snaps[depth]
}

// BenchmarkSimLongHorizon tracks the sustained epochs/sec of the Table 1
// Scenario 5.1 run — the quantity that bounds sim/leak's ~4,660-epoch
// wall clock (BENCH.md tracks the trajectory). depth-6 measures just
// after the leak starts; the depth-100/2000/4000 variants measure the
// SAME run thousands of epochs in, where pre-compaction cost grew with
// tree depth. With spine compaction plus the frontier-bounded settle the
// trajectory is flat: depth-4000 must hold >= 0.8x depth-100 (CI-gated).
func BenchmarkSimLongHorizon(b *testing.B) {
	b.Run("depth-6", func(b *testing.B) {
		s, err := New(longHorizonConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Enter the leak (finality stalls after MinEpochsToInactivityLeak).
		if err := s.RunEpochs(6); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.RunEpochs(1); err != nil {
				b.Fatal(err)
			}
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "epochs/sec")
		}
	})
	for _, depth := range longHorizonDepths {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			sn := longHorizonSnapshotAt(b, depth)
			s, err := New(longHorizonConfig())
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Restore(sn); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.RunEpochs(1); err != nil {
					b.Fatal(err)
				}
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "epochs/sec")
			}
		})
	}
}

// BenchmarkCohortRegistry measures the columnar registry's epoch-boundary
// sweep — penalties, scores, ejections, and post-state measurement over
// flat stake/score/status slices — at paper scale (1M validators), plus
// the Clone a justified-checkpoint snapshot costs.
func BenchmarkCohortRegistry(b *testing.B) {
	const n = 1_000_000
	spec := types.DefaultSpec()
	engine := incentives.Engine{Spec: spec}
	active := func(v types.ValidatorIndex) bool { return v%2 == 0 }

	b.Run("process-epoch-leak", func(b *testing.B) {
		reg := validator.NewRegistry(n, spec.MaxEffectiveBalance)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			engine.ProcessEpoch(reg, active, true, types.Epoch(i+1))
		}
	})
	b.Run("clone", func(b *testing.B) {
		reg := validator.NewRegistry(n, spec.MaxEffectiveBalance)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if reg.Clone().Len() != n {
				b.Fatal("clone lost validators")
			}
		}
	})
	b.Run("total-stake", func(b *testing.B) {
		reg := validator.NewRegistry(n, spec.MaxEffectiveBalance)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if reg.TotalStake() == 0 {
				b.Fatal("empty registry")
			}
		}
	})
}
