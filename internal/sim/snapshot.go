package sim

import (
	"fmt"

	"repro/internal/beacon"
	"repro/internal/blocktree"
	"repro/internal/network"
	"repro/internal/types"
)

// Snapshot is a frozen copy of a simulation's full protocol state at a
// slot boundary: every cohort view (block tree, fork-choice engine, FFG
// state, attestation pool, slashing detector, registry), the in-flight
// network messages, duty-view assignments, live proposer embargoes, the
// Safety-audit oracle, and the clock. Construct with Simulation.Snapshot;
// replay with Simulation.Restore.
//
// A snapshot is immutable once taken: Restore clones it again, so one
// snapshot can seed any number of continuations — long runs become
// resumable, and sweeps whose cells share a prefix (same Config up to the
// branch point) warm-start from one simulated prefix instead of
// re-simulating epoch 0 per cell.
//
// Everything pseudo-random in the simulator is a stateless hash of
// (seed, slot, ...) — proposer schedule, duty shuffling, link outages —
// so the snapshot needs no RNG cursor beyond the slot itself: a restored
// run re-derives the identical schedule. The one thing OUTSIDE the
// snapshot is Config.Adversary: adversary-internal state is the caller's
// to manage. Adversary-free runs (sim/partition, sim/leak, sim/drops,
// sim/gst) and the stateless DoubleVoter restore exactly; the SemiActive
// adversary is stateless only until its finalization gait starts (its
// gait state machine is not rewound by Restore), and the Bouncer caches
// view pointers and carries its own RNG — neither may be resumed across
// a Restore of an epoch range in which it mutated.
type Snapshot struct {
	validators int
	slot       types.Slot
	nodes      []*beacon.Node
	dutyView   []int
	embargoes  []embargo
	oracle     *blocktree.Tree
	net        *network.Network[Message]
}

// Slot returns the slot at which the snapshot was taken (the next slot to
// execute after a Restore).
func (sn *Snapshot) Slot() types.Slot { return sn.slot }

// Snapshot captures the simulation's current state. The cost is one deep
// copy of every cohort view plus the undelivered messages — flat column
// copies throughout (registry, proto-array, tree nodes), no per-validator
// map rehashing.
func (s *Simulation) Snapshot() *Snapshot {
	sn := &Snapshot{
		validators: s.Cfg.Validators,
		slot:       s.slot,
		nodes:      make([]*beacon.Node, len(s.cohorts)),
		dutyView:   append([]int(nil), s.dutyView...),
		embargoes:  append([]embargo(nil), s.embargoes...),
		oracle:     s.oracle.Clone(),
		net:        s.Net.Clone(),
	}
	for i, c := range s.cohorts {
		sn.nodes[i] = c.Node.Clone()
	}
	return sn
}

// Restore rewinds (or fast-forwards) the simulation to the snapshot's
// state. The snapshot must come from a simulation with the same Config —
// same validator set, cohort layout, spec, and seed — normally the very
// simulation being restored. The snapshot itself is not consumed: its
// state is cloned in, so it can be restored again.
func (s *Simulation) Restore(sn *Snapshot) error {
	if sn.validators != s.Cfg.Validators || len(sn.nodes) != len(s.cohorts) {
		return fmt.Errorf("%w: snapshot of %d validators / %d cohorts restored into %d / %d",
			ErrBadConfig, sn.validators, len(sn.nodes), s.Cfg.Validators, len(s.cohorts))
	}
	for i, c := range s.cohorts {
		c.Node = sn.nodes[i].Clone()
	}
	s.Net = sn.net.Clone()
	s.oracle = sn.oracle.Clone()
	copy(s.dutyView, sn.dutyView)
	s.embargoes = append(s.embargoes[:0], sn.embargoes...)
	s.slot = sn.slot
	// The duty roster caches (epoch, seed, shuffling)-derived state; the
	// restored epoch may differ, so force a rebuild.
	s.dutyRosterSet = false
	return nil
}
