package sim

import (
	"fmt"

	"repro/internal/beacon"
	"repro/internal/blocktree"
	"repro/internal/forkchoice"
	"repro/internal/network"
	"repro/internal/types"
)

// Snapshot is a frozen copy of a simulation's full protocol state at a
// slot boundary: every cohort view (block tree, fork-choice engine, FFG
// state, attestation pool, slashing detector, registry), the in-flight
// network messages, duty-view assignments, live proposer embargoes, the
// Safety-audit oracle, and the clock. Construct with Simulation.Snapshot;
// replay with Simulation.Restore.
//
// A snapshot is immutable once taken: Restore clones it again, so one
// snapshot can seed any number of continuations — long runs become
// resumable, and sweeps whose cells share a prefix (same Config up to the
// branch point) warm-start from one simulated prefix instead of
// re-simulating epoch 0 per cell (see internal/engine/warmstart, which
// promotes this primitive into a refcounted compute cache).
//
// Everything pseudo-random in the simulator is a stateless hash of
// (seed, slot, ...) — proposer schedule, duty shuffling, link outages —
// so the snapshot needs no RNG cursor beyond the slot itself: a restored
// run re-derives the identical schedule. The one thing OUTSIDE the
// snapshot is Config.Adversary: adversary-internal state is the caller's
// to manage. Adversary-free runs (sim/partition, sim/leak, sim/drops,
// sim/gst) and the stateless DoubleVoter restore exactly; the SemiActive
// adversary carries a small scalar gait state machine that Restore does
// not rewind — warm-start continuations pair each snapshot with a
// behavior.SemiActive.Clone taken at the same boundary; the Bouncer
// caches view pointers and carries its own RNG cursor and may not be
// resumed across a Restore of an epoch range in which it mutated.
//
// GST portability: a snapshot may be restored into a simulation whose
// Config.GST differs from the snapshotted run's — Restore retargets the
// held cross-partition traffic onto the new heal slot
// (network.RetargetGST). Prefix runs meant for fan-out across a gst sweep
// use network.FarFuture (held messages retained) rather than
// network.Never (discarded at enqueue).
type Snapshot struct {
	validators int
	slot       types.Slot
	nodes      []*beacon.Node
	dutyView   []int
	embargoes  []embargo
	oracle     *blocktree.Tree
	net        *network.Network[Message]
	bytes      int64
}

// Slot returns the slot at which the snapshot was taken (the next slot to
// execute after a Restore).
func (sn *Snapshot) Slot() types.Slot { return sn.slot }

// Bytes estimates the snapshot's retained heap footprint: block-tree and
// fork-choice columns (exact, via their Stats), validator registries (two
// per view — current plus justified-checkpoint balances), and the held
// network messages. Warm-start schedulers budget resident snapshots
// against this figure (engine.WarmStartOptions.MemoryBudget).
func (sn *Snapshot) Bytes() int64 { return sn.bytes }

// Per-entry estimates for the snapshot components that do not expose an
// exact byte count: one validator registry row is four 8-byte columns, and
// a held network message is a three-pointer union plus map/slice overhead.
const (
	registryRowBytes = 32
	heldMessageBytes = 64
)

// snapshotBytes sums the footprint of the cloned state.
func snapshotBytes(sn *Snapshot) int64 {
	var total int64
	for _, n := range sn.nodes {
		total += int64(n.Tree.Stats().Bytes)
		if pa, ok := n.Votes.(*forkchoice.ProtoArray); ok {
			total += int64(pa.Stats().Bytes)
		}
		total += 2 * registryRowBytes * int64(n.Registry.Len())
	}
	total += int64(sn.oracle.Stats().Bytes)
	// Network endpoints are cohort views, one inbox per materialized view.
	for endpoint := range sn.nodes {
		total += heldMessageBytes * int64(sn.net.PendingFor(network.NodeID(endpoint)))
	}
	return total
}

// Snapshot captures the simulation's current state. The cost is one deep
// copy of every cohort view plus the undelivered messages — flat column
// copies throughout (registry, proto-array, tree nodes), no per-validator
// map rehashing.
func (s *Simulation) Snapshot() *Snapshot {
	sn := &Snapshot{
		validators: s.Cfg.Validators,
		slot:       s.slot,
		nodes:      make([]*beacon.Node, len(s.cohorts)),
		dutyView:   append([]int(nil), s.dutyView...),
		embargoes:  append([]embargo(nil), s.embargoes...),
		oracle:     s.oracle.Clone(),
		net:        s.Net.Clone(),
	}
	for i, c := range s.cohorts {
		sn.nodes[i] = c.Node.Clone()
	}
	sn.bytes = snapshotBytes(sn)
	return sn
}

// Restore rewinds (or fast-forwards) the simulation to the snapshot's
// state. The snapshot must come from a simulation with the same Config —
// same validator set, cohort layout, spec, and seed — except for GST,
// which may differ: held cross-partition traffic is retargeted onto this
// simulation's own heal slot, the warm-start path that lets one shared
// prefix (snapshotted under network.FarFuture) fan out across a gst
// sweep's cells. The snapshot itself is not consumed: its state is cloned
// in, so it can be restored again.
func (s *Simulation) Restore(sn *Snapshot) error {
	if sn.validators != s.Cfg.Validators || len(sn.nodes) != len(s.cohorts) {
		return fmt.Errorf("%w: snapshot of %d validators / %d cohorts restored into %d / %d",
			ErrBadConfig, sn.validators, len(sn.nodes), s.Cfg.Validators, len(s.cohorts))
	}
	for i, c := range s.cohorts {
		c.Node = sn.nodes[i].Clone()
	}
	s.Net = sn.net.Clone()
	s.Net.RetargetGST(s.Cfg.GST)
	s.oracle = sn.oracle.Clone()
	copy(s.dutyView, sn.dutyView)
	s.embargoes = append(s.embargoes[:0], sn.embargoes...)
	s.slot = sn.slot
	// The duty roster caches (epoch, seed, shuffling)-derived state; the
	// restored epoch may differ, so force a rebuild.
	s.dutyRosterSet = false
	return nil
}

// Adopt is Restore without the defensive deep copy: the snapshot's state
// is moved into the simulation and the snapshot is consumed (poisoned —
// any later Restore or Adopt of it fails). Use it only for a snapshot's
// final consumer; the warm-start scheduler grants that through refcounts
// (engine.Prefix.Owned). The resulting state is identical to Restore's,
// so adopting versus restoring can never change a run's results — it only
// skips cloning state that would be garbage the moment it was copied.
func (s *Simulation) Adopt(sn *Snapshot) error {
	if sn.nodes == nil {
		return fmt.Errorf("%w: snapshot already adopted", ErrBadConfig)
	}
	if sn.validators != s.Cfg.Validators || len(sn.nodes) != len(s.cohorts) {
		return fmt.Errorf("%w: snapshot of %d validators / %d cohorts adopted into %d / %d",
			ErrBadConfig, sn.validators, len(sn.nodes), s.Cfg.Validators, len(s.cohorts))
	}
	for i, c := range s.cohorts {
		c.Node = sn.nodes[i]
	}
	s.Net = sn.net
	s.Net.RetargetGST(s.Cfg.GST)
	s.oracle = sn.oracle
	copy(s.dutyView, sn.dutyView)
	s.embargoes = append(s.embargoes[:0], sn.embargoes...)
	s.slot = sn.slot
	s.dutyRosterSet = false
	sn.nodes, sn.net, sn.oracle = nil, nil, nil
	return nil
}

// Attach points the simulation at the snapshot's state without cloning or
// consuming it: cohort nodes, network, and oracle ALIAS the snapshot. The
// caller must treat the attached simulation as strictly read-only —
// computing metrics and assembling results is fine, stepping it would
// corrupt the shared snapshot for every other consumer. Unlike Restore,
// Attach does not retarget the held network traffic onto this simulation's
// GST (that would mutate the shared network): a read-only consumer never
// delivers another message, so the held band's position is unobservable to
// it. This is the warm-start fast path for a resume whose branch epoch
// equals its horizon — nothing remains to simulate, so the cell's Result
// is read straight off the checkpoint.
func (s *Simulation) Attach(sn *Snapshot) error {
	if sn.nodes == nil {
		return fmt.Errorf("%w: snapshot already adopted", ErrBadConfig)
	}
	if sn.validators != s.Cfg.Validators || len(sn.nodes) != len(s.cohorts) {
		return fmt.Errorf("%w: snapshot of %d validators / %d cohorts attached to %d / %d",
			ErrBadConfig, sn.validators, len(sn.nodes), s.Cfg.Validators, len(s.cohorts))
	}
	for i, c := range s.cohorts {
		c.Node = sn.nodes[i]
	}
	s.Net = sn.net
	s.oracle = sn.oracle
	copy(s.dutyView, sn.dutyView)
	s.embargoes = append(s.embargoes[:0], sn.embargoes...)
	s.slot = sn.slot
	s.dutyRosterSet = false
	return nil
}

// SetGST rebases a running simulation onto a new heal slot: the network's
// held cross-partition traffic moves with it (network.RetargetGST), and
// all future reachability and compaction decisions use the new GST.
// Equivalent to restoring a snapshot of this state into a simulation
// configured with the new GST — the warm-start path uses it to hand a
// spine's still-live FarFuture simulation directly to a resuming cell.
func (s *Simulation) SetGST(gst types.Slot) {
	s.Cfg.GST = gst
	s.Net.RetargetGST(gst)
	s.dutyRosterSet = false
}
