package sim

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/attestation"
	"repro/internal/beacon"
	"repro/internal/blocktree"
	"repro/internal/codec"
	"repro/internal/network"
	"repro/internal/types"
)

// Durable snapshot framing: a magic, a format version, a payload length,
// and an FNV-64a checksum over the payload. The container makes torn or
// bit-flipped files detectable before any field is trusted; the format
// version makes a snapshot written by a different codec revision
// detectable (a version-skew read fails like corruption — callers treat
// both as "no checkpoint" and run cold).
const (
	snapshotMagic   = "GLSN"
	snapshotVersion = uint32(1)
	// snapshotMaxBytes bounds the declared payload length, so a corrupt
	// header cannot drive an arbitrary allocation (a full-spec
	// 10k-validator snapshot is a few MiB; 1 GiB is far past any real
	// grid's cell).
	snapshotMaxBytes = 1 << 30
)

// ErrSnapshotCodec wraps every decode failure of ReadSnapshot: torn
// files, checksum mismatches, version skew, and structurally impossible
// payloads all surface as this one error class, which the checkpoint
// layer maps to a silent miss.
var ErrSnapshotCodec = fmt.Errorf("sim: snapshot codec")

func encodeMessage(w *codec.Writer, m Message) {
	switch {
	case m.Block != nil:
		w.Byte(1)
		b := *m.Block
		w.U64(uint64(b.Slot))
		w.Raw(b.Root[:])
		w.Raw(b.Parent[:])
		w.U64(uint64(b.Proposer))
	case m.Att != nil:
		w.Byte(2)
		w.U64(uint64(m.Att.Validator))
		attestation.EncodeData(w, m.Att.Data)
	case m.Batch != nil:
		w.Byte(3)
		attestation.EncodeData(w, m.Batch.Data)
		w.Len(len(m.Batch.Validators))
		for _, v := range m.Batch.Validators {
			w.U64(uint64(v))
		}
	default:
		w.Byte(0)
	}
}

func decodeMessage(r *codec.Reader) Message {
	switch tag := r.Byte(); tag {
	case 1:
		var b blocktree.Block
		b.Slot = types.Slot(r.U64())
		r.Raw(b.Root[:])
		r.Raw(b.Parent[:])
		b.Proposer = types.ValidatorIndex(r.U64())
		return Message{Block: &b}
	case 2:
		var a attestation.Attestation
		a.Validator = types.ValidatorIndex(r.U64())
		a.Data = attestation.DecodeData(r)
		return Message{Att: &a}
	case 3:
		var batch AttBatch
		batch.Data = attestation.DecodeData(r)
		nv := r.Len()
		if r.Err() != nil {
			return Message{}
		}
		batch.Validators = make([]types.ValidatorIndex, nv)
		for i := 0; i < nv; i++ {
			batch.Validators[i] = types.ValidatorIndex(r.U64())
		}
		return Message{Batch: &batch}
	default:
		r.Corrupt("sim: unknown message tag %d", tag)
		return Message{}
	}
}

// WriteTo serializes the snapshot — every cohort view, the duty-view
// assignments, live embargoes, the safety-audit oracle, and all held
// network traffic — as one versioned, checksummed binary blob. A
// ReadSnapshot of the bytes restores bit-identically: continuing a
// decoded snapshot produces the same results (same conflict epoch) as
// continuing the in-memory original. Implements io.WriterTo.
func (sn *Snapshot) WriteTo(dst io.Writer) (int64, error) {
	if sn.nodes == nil {
		return 0, fmt.Errorf("%w: snapshot already adopted", ErrBadConfig)
	}
	var payload bytes.Buffer
	w := codec.NewWriter(&payload)
	w.Int(sn.validators)
	w.U64(uint64(sn.slot))
	w.Len(len(sn.nodes))
	for _, n := range sn.nodes {
		n.EncodeTo(w)
	}
	w.Len(len(sn.dutyView))
	for _, v := range sn.dutyView {
		w.Int(v)
	}
	w.Len(len(sn.embargoes))
	for _, e := range sn.embargoes {
		w.Int(e.cohort)
		w.U64(uint64(e.producer))
		w.Raw(e.root[:])
		w.U64(uint64(e.until))
	}
	sn.oracle.EncodeTo(w)
	sn.net.EncodeTo(w, encodeMessage)
	if err := w.Err(); err != nil {
		return 0, fmt.Errorf("%w: encode: %v", ErrSnapshotCodec, err)
	}

	sum := fnv.New64a()
	sum.Write(payload.Bytes())
	var header [20]byte
	copy(header[:4], snapshotMagic)
	binary.LittleEndian.PutUint32(header[4:8], snapshotVersion)
	binary.LittleEndian.PutUint32(header[8:12], uint32(payload.Len()))
	binary.LittleEndian.PutUint64(header[12:20], sum.Sum64())
	if _, err := dst.Write(header[:]); err != nil {
		return 0, err
	}
	n, err := dst.Write(payload.Bytes())
	return int64(len(header) + n), err
}

// ReadSnapshot decodes a snapshot serialized by WriteTo. Any damage —
// a torn or truncated file, a flipped bit, a snapshot written by a
// different codec version, a structurally impossible payload — returns
// an error wrapping ErrSnapshotCodec; no partially-decoded snapshot ever
// escapes. The decoded snapshot is a full deep state: Restore, Adopt,
// and Attach accept it exactly like an in-memory one.
func ReadSnapshot(src io.Reader) (*Snapshot, error) {
	var header [20]byte
	if _, err := io.ReadFull(src, header[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrSnapshotCodec, err)
	}
	if string(header[:4]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotCodec)
	}
	if v := binary.LittleEndian.Uint32(header[4:8]); v != snapshotVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrSnapshotCodec, v, snapshotVersion)
	}
	size := binary.LittleEndian.Uint32(header[8:12])
	if size > snapshotMaxBytes {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrSnapshotCodec, size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(src, payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrSnapshotCodec, err)
	}
	sum := fnv.New64a()
	sum.Write(payload)
	if sum.Sum64() != binary.LittleEndian.Uint64(header[12:20]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCodec)
	}

	r := codec.NewReader(bytes.NewReader(payload))
	sn := &Snapshot{}
	sn.validators = r.Int()
	sn.slot = types.Slot(r.U64())
	nn := r.Len()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCodec, err)
	}
	sn.nodes = make([]*beacon.Node, nn)
	for i := 0; i < nn; i++ {
		sn.nodes[i] = beacon.DecodeNode(r)
		if sn.nodes[i] == nil {
			return nil, fmt.Errorf("%w: node %d: %v", ErrSnapshotCodec, i, r.Err())
		}
	}
	nd := r.Len()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCodec, err)
	}
	sn.dutyView = make([]int, nd)
	for i := 0; i < nd; i++ {
		sn.dutyView[i] = r.Int()
	}
	ne := r.Len()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCodec, err)
	}
	sn.embargoes = make([]embargo, ne)
	for i := range sn.embargoes {
		e := &sn.embargoes[i]
		e.cohort = r.Int()
		e.producer = types.ValidatorIndex(r.U64())
		r.Raw(e.root[:])
		e.until = types.Slot(r.U64())
	}
	sn.oracle = blocktree.DecodeTree(r)
	if sn.oracle == nil {
		return nil, fmt.Errorf("%w: oracle: %v", ErrSnapshotCodec, r.Err())
	}
	sn.net = network.DecodeNetwork(r, decodeMessage)
	if sn.net == nil {
		return nil, fmt.Errorf("%w: network: %v", ErrSnapshotCodec, r.Err())
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCodec, err)
	}
	sn.bytes = snapshotBytes(sn)
	return sn, nil
}
