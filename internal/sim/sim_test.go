package sim

import (
	"errors"
	"testing"

	"repro/internal/types"
)

func healthyConfig(n int) Config {
	return Config{
		Validators: n,
		Spec:       types.DefaultSpec(),
		GST:        0,
		Delay:      1,
		Seed:       1,
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Validators: 0, Spec: types.DefaultSpec()}); err == nil {
		t.Error("zero validators must be rejected")
	}
	if _, err := New(Config{Validators: 4}); err == nil {
		t.Error("zero spec must be rejected")
	}
	if _, err := New(Config{Validators: 4, Spec: types.DefaultSpec(), Delay: 0}); err == nil {
		t.Error("zero delay must be rejected (same-slot delivery races the drained inbox)")
	}
	cfg := healthyConfig(4)
	cfg.Byzantine = []types.ValidatorIndex{9}
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range Byzantine index must be rejected")
	}
	cfg = healthyConfig(4)
	cfg.Byzantine = []types.ValidatorIndex{2, 2}
	_, err := New(cfg)
	if err == nil {
		t.Error("duplicate Byzantine indices must be rejected, not silently collapsed")
	}
	if !errors.Is(err, ErrBadConfig) {
		t.Errorf("duplicate Byzantine error = %v, want ErrBadConfig", err)
	}
}

func TestProposerScheduleDeterministicAndInRange(t *testing.T) {
	s, err := New(healthyConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := New(healthyConfig(16))
	seen := map[types.ValidatorIndex]bool{}
	for slot := types.Slot(0); slot < 256; slot++ {
		p := s.ProposerAt(slot)
		if int(p) >= 16 {
			t.Fatalf("proposer %d out of range", p)
		}
		if p != s2.ProposerAt(slot) {
			t.Fatal("proposer schedule must be deterministic per seed")
		}
		seen[p] = true
	}
	if len(seen) < 12 {
		t.Errorf("proposer schedule uses only %d of 16 validators over 256 slots", len(seen))
	}
}

func TestAttestationSlotWithinEpoch(t *testing.T) {
	s, _ := New(healthyConfig(100))
	for v := types.ValidatorIndex(0); v < 100; v++ {
		slot := s.AttestationSlot(v, 3)
		if slot.Epoch() != 3 {
			t.Fatalf("duty slot %d for validator %d not in epoch 3", slot, v)
		}
	}
}

func TestShuffledDuties(t *testing.T) {
	cfg := healthyConfig(64)
	cfg.ShuffledDuties = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Duties stay within the epoch and are deterministic per seed.
	s2, _ := New(cfg)
	changed := false
	for v := types.ValidatorIndex(0); v < 64; v++ {
		a := s.AttestationSlot(v, 3)
		if a.Epoch() != 3 {
			t.Fatalf("duty slot %d outside epoch 3", a)
		}
		if a != s2.AttestationSlot(v, 3) {
			t.Fatal("shuffled duties must be deterministic per seed")
		}
		if a != s.AttestationSlot(v, 4) {
			changed = true
		}
	}
	if !changed {
		t.Error("shuffling must reassign at least some duties between epochs")
	}
}

// TestShuffledDutiesChainStillFinalizes: the liveness baseline holds with
// per-epoch committee shuffling.
func TestShuffledDutiesChainStillFinalizes(t *testing.T) {
	cfg := healthyConfig(16)
	cfg.ShuffledDuties = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(8); err != nil {
		t.Fatal(err)
	}
	for _, v := range s.HonestIndices() {
		if got := s.View(v).Finalized().Epoch; got < 5 {
			t.Errorf("validator %d finalized epoch %d with shuffled duties, want >= 5", v, got)
		}
	}
}

func TestHonestIndicesExcludesByzantine(t *testing.T) {
	cfg := healthyConfig(6)
	cfg.Byzantine = []types.ValidatorIndex{1, 4}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	honest := s.HonestIndices()
	if len(honest) != 4 {
		t.Fatalf("honest = %v", honest)
	}
	for _, h := range honest {
		if s.IsByzantine(h) {
			t.Errorf("honest list contains Byzantine %d", h)
		}
	}
	// The slice is cached: repeated calls return the same backing array
	// instead of allocating per call (it runs inside every Snapshot).
	again := s.HonestIndices()
	if &again[0] != &honest[0] {
		t.Error("HonestIndices must return the construction-time slice, not a fresh copy")
	}
}

// TestCohortLayout: the default mode materializes one view per honest
// partition plus one bridging Byzantine view; the oracle mode one per
// validator.
func TestCohortLayout(t *testing.T) {
	cfg := healthyConfig(10)
	cfg.Byzantine = []types.ValidatorIndex{8, 9}
	cfg.PartitionOf = func(v types.ValidatorIndex) int { return int(v) % 2 }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cohorts := s.Cohorts()
	if len(cohorts) != 3 {
		t.Fatalf("cohorts = %d, want 2 honest partitions + 1 byzantine", len(cohorts))
	}
	byz := 0
	members := 0
	for _, c := range cohorts {
		members += len(c.Members)
		if c.Byzantine {
			byz++
			if len(c.Members) != 2 {
				t.Errorf("byzantine cohort members = %v", c.Members)
			}
		}
	}
	if byz != 1 || members != 10 {
		t.Errorf("byz cohorts = %d, total members = %d", byz, members)
	}
	// Cohort-mates share one view object.
	if s.View(0) != s.View(2) {
		t.Error("validators 0 and 2 share partition 0 but not a view")
	}
	if s.View(0) == s.View(1) {
		t.Error("validators 0 and 1 are in different partitions but share a view")
	}

	cfg.PerValidatorViews = true
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(o.Cohorts()); got != 10 {
		t.Fatalf("oracle mode cohorts = %d, want one per validator", got)
	}
	if o.View(0) == o.View(2) {
		t.Error("oracle mode must not share views")
	}
}

// TestHealthyChainFinalizes is the baseline liveness check: with all
// validators honest and a synchronous network, the finalized chain grows
// epoch after epoch and no leak ever starts.
func TestHealthyChainFinalizes(t *testing.T) {
	s, err := New(healthyConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(8); err != nil {
		t.Fatal(err)
	}
	for _, v := range s.HonestIndices() {
		n := s.View(v)
		if got := n.Finalized().Epoch; got < 5 {
			t.Errorf("validator %d finalized epoch %d, want >= 5", v, got)
		}
		if n.FFG.InLeak(8, s.Cfg.Spec) {
			t.Errorf("validator %d believes it is in a leak on a healthy chain", v)
		}
		if n.Registry.Stake(v) != types.MaxEffectiveBalanceGwei {
			t.Errorf("validator %d lost stake on a healthy chain", v)
		}
	}
	if v := s.CheckFinalitySafety(); v != nil {
		t.Errorf("healthy chain reported a safety violation: %v", v)
	}
}

// TestHealthyChainToleratesMessageLoss spreads a synchronous (GST 0)
// population over four partitions whose cross-partition links suffer 20%
// outage slots; retransmissions preserve liveness.
func TestHealthyChainToleratesMessageLoss(t *testing.T) {
	cfg := healthyConfig(16)
	cfg.DropRate = 0.2
	cfg.PartitionOf = func(v types.ValidatorIndex) int { return int(v) % 4 }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(10); err != nil {
		t.Fatal(err)
	}
	if _, dropped := s.Net.Stats(); dropped == 0 {
		t.Fatal("no deliveries were delayed; the loss injection is inert")
	}
	for _, v := range s.HonestIndices() {
		if got := s.View(v).Finalized().Epoch; got < 5 {
			t.Errorf("validator %d finalized epoch %d under 20%% loss, want >= 5", v, got)
		}
	}
}

// halfSplit partitions validators into two equal halves.
func halfSplit(n int) func(types.ValidatorIndex) int {
	return func(v types.ValidatorIndex) int {
		if int(v) < n/2 {
			return 0
		}
		return 1
	}
}

// TestPartitionStallsFinalityAndStartsLeak: a 50/50 partition prevents any
// quorum; finality stops and the inactivity leak begins on both sides
// (Availability holds: candidate chains keep growing).
func TestPartitionStallsFinalityAndStartsLeak(t *testing.T) {
	cfg := healthyConfig(16)
	cfg.GST = 1 << 30
	cfg.PartitionOf = halfSplit(16)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(8); err != nil {
		t.Fatal(err)
	}
	for _, v := range s.HonestIndices() {
		n := s.View(v)
		if got := n.Finalized().Epoch; got != 0 {
			t.Errorf("validator %d finalized epoch %d during 50/50 partition, want 0", v, got)
		}
		if !n.FFG.InLeak(8, s.Cfg.Spec) {
			t.Errorf("validator %d not in leak after 8 unfinalized epochs", v)
		}
		// Availability: candidate chains grew.
		if n.Tree.Len() < 32 {
			t.Errorf("validator %d tree has only %d blocks; chain growth stalled", v, n.Tree.Len())
		}
	}
	if v := s.CheckFinalitySafety(); v != nil {
		t.Errorf("no conflicting finalization should exist yet: %v", v)
	}
}

// TestScenario51ConflictingFinalization reproduces the paper's Scenario 5.1
// mechanistically under a compressed spec: a lasting 50/50 partition drains
// inactive stake on both sides until each side regains a quorum and
// finalizes its own branch — a Safety violation with only honest
// validators.
func TestScenario51ConflictingFinalization(t *testing.T) {
	cfg := Config{
		Validators:  16,
		Spec:        types.CompressedSpec(1 << 16), // quotient 1024
		GST:         1 << 30,
		Delay:       1,
		Seed:        3,
		PartitionOf: halfSplit(16),
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var conflictEpoch types.Epoch
	for epoch := 1; epoch <= 40; epoch++ {
		if err := s.RunEpochs(1); err != nil {
			t.Fatal(err)
		}
		if v := s.CheckFinalitySafety(); v != nil {
			conflictEpoch = types.Epoch(epoch)
			break
		}
	}
	if conflictEpoch == 0 {
		t.Fatal("no conflicting finalization within 40 epochs; the leak mechanism failed")
	}
	// The compressed continuous model predicts the quorum returns via
	// ejection ~18-19 epochs after the leak starts (epoch ~5), plus the
	// finalization epoch: expect the violation in the 20-32 epoch range.
	if conflictEpoch < 15 || conflictEpoch > 35 {
		t.Errorf("conflicting finalization at epoch %d, want ~20-30 under 2^10 quotient", conflictEpoch)
	}
	// Both halves finalized different branches.
	a, b := s.View(0).Finalized(), s.View(15).Finalized()
	if a.Root == b.Root {
		t.Error("the two partitions should have finalized different branches")
	}
	t.Logf("conflicting finalization at epoch %d (%s vs %s)", conflictEpoch, a, b)
}

// TestPartitionHealsBeforeLeakCompletes: when GST arrives before either
// side regains a quorum, the sides reconcile on one branch and finality
// resumes without any Safety violation.
func TestPartitionHealsBeforeLeakCompletes(t *testing.T) {
	cfg := Config{
		Validators:  16,
		Spec:        types.CompressedSpec(1 << 16),
		GST:         8 * 32, // heal at epoch 8, well before quorum returns
		Delay:       1,
		Seed:        3,
		PartitionOf: halfSplit(16),
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(16); err != nil {
		t.Fatal(err)
	}
	if v := s.CheckFinalitySafety(); v != nil {
		t.Fatalf("healed partition must not violate safety: %v", v)
	}
	// Finality resumed after GST.
	for _, v := range s.HonestIndices() {
		if got := s.View(v).Finalized().Epoch; got < 9 {
			t.Errorf("validator %d finalized epoch %d, want >= 9 after healing", v, got)
		}
	}
}

// TestStakeConservationOnHealthyChain: outside a leak no stake moves.
func TestStakeConservationOnHealthyChain(t *testing.T) {
	s, err := New(healthyConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(6); err != nil {
		t.Fatal(err)
	}
	want := types.Gwei(8) * types.MaxEffectiveBalanceGwei
	for _, v := range s.HonestIndices() {
		if got := s.View(v).Registry.TotalStake(); got != want {
			t.Errorf("validator %d total stake = %d, want %d", v, got, want)
		}
	}
}

// TestByzantineProportionOnHealthyChain stays at the initial value.
func TestByzantineProportionOn(t *testing.T) {
	cfg := healthyConfig(8)
	cfg.Byzantine = []types.ValidatorIndex{6, 7}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ByzantineProportionOn(0); got != 0.25 {
		t.Errorf("initial Byzantine proportion = %v, want 0.25", got)
	}
}

func TestOnEpochHookRuns(t *testing.T) {
	var epochs []types.Epoch
	cfg := healthyConfig(8)
	cfg.OnEpoch = func(_ *Simulation, e types.Epoch) { epochs = append(epochs, e) }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(3); err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || epochs[0] != 1 || epochs[1] != 2 {
		t.Errorf("OnEpoch fired for %v, want [1 2]", epochs)
	}
}

// TestFinalizedPruningBoundsTreeMemory: on a healthy chain, finalization
// keeps each view's block tree bounded to the unfinalized suffix instead of
// the whole history.
func TestFinalizedPruningBoundsTreeMemory(t *testing.T) {
	s, err := New(healthyConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(12); err != nil {
		t.Fatal(err)
	}
	// 12 epochs x ~30 blocks/epoch would be ~360 blocks unpruned; with
	// finality trailing by 2 epochs the suffix holds ~4 epochs of blocks.
	for _, c := range s.Cohorts() {
		if c.Node.Tree.Len() > 6*32 {
			t.Errorf("cohort %d tree = %d blocks; pruning not effective", c.Index, c.Node.Tree.Len())
		}
		if c.Node.Finalized().Epoch < 9 {
			t.Errorf("cohort %d finalized %d; chain unhealthy", c.Index, c.Node.Finalized().Epoch)
		}
	}
}

func TestOracleRecordsAllBlocks(t *testing.T) {
	s, err := New(healthyConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(2); err != nil {
		t.Fatal(err)
	}
	// Every block any view holds is in the oracle.
	for _, c := range s.Cohorts() {
		if c.Node.Tree.Len() > s.Oracle().Len() {
			t.Errorf("cohort %d tree (%d) larger than oracle (%d)", c.Index, c.Node.Tree.Len(), s.Oracle().Len())
		}
	}
	if s.Oracle().Len() < 32 {
		t.Errorf("oracle has %d blocks after 2 epochs, want ~60", s.Oracle().Len())
	}
}

func TestNewRejectsInertOrColludingNetworkConfig(t *testing.T) {
	// Negative partition ids would collide with the Byzantine cohort's
	// internal sentinel.
	cfg := healthyConfig(4)
	cfg.PartitionOf = func(types.ValidatorIndex) int { return -1 }
	if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative partition id accepted: %v", err)
	}
	// A drop rate without >= 2 partitions injects no loss at all (drops
	// are cross-partition link outages); reject instead of silently
	// measuring a lossless baseline.
	cfg = healthyConfig(4)
	cfg.DropRate = 0.2
	if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("inert drop rate accepted: %v", err)
	}
	cfg.PartitionOf = func(v types.ValidatorIndex) int { return int(v) % 2 }
	if _, err := New(cfg); err != nil {
		t.Errorf("drop rate with 2 partitions rejected: %v", err)
	}
	// Out-of-range rates.
	cfg.DropRate = 1.5
	if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("drop rate > 1 accepted: %v", err)
	}
}

// TestDutyRosterHandlesNonStandardEpochLength: the per-epoch duty roster
// must serve specs whose SlotsPerEpoch differs from the global 32-slot
// grid — a 16-slot spec packs all duties into the epoch's first half, and
// neither building nor consuming the roster may index out of range.
func TestDutyRosterHandlesNonStandardEpochLength(t *testing.T) {
	for _, slots := range []uint64{16, 48} {
		spec := types.DefaultSpec()
		spec.SlotsPerEpoch = slots
		cfg := Config{Validators: 8, Spec: spec, Delay: 1, Seed: 1}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunEpochs(2); err != nil {
			t.Fatalf("SlotsPerEpoch=%d: %v", slots, err)
		}
	}
}
