// Package sim drives full-protocol simulations: one beacon node per
// validator, a partitionable network, a deterministic proposer schedule,
// honest duties (propose, attest once per epoch), and an adversary hook
// with the full power of the paper's fault model — Byzantine validators are
// coordinated by a single adversary that sees every partition and may send
// arbitrary protocol messages at chosen times.
//
// The engine is slot-driven. Each slot it (1) delivers network messages,
// (2) runs epoch-boundary processing on every node at epoch starts,
// (3) lets the slot's honest proposer extend its head, (4) lets honest
// attesters with this slot assignment attest, and (5) gives the adversary
// its turn.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/attestation"
	"repro/internal/beacon"
	"repro/internal/blocktree"
	"repro/internal/crypto"
	"repro/internal/ffg"
	"repro/internal/network"
	"repro/internal/types"
)

// Message is the wire format: exactly one field is set.
type Message struct {
	Block *blocktree.Block
	Att   *attestation.Attestation
}

// Adversary coordinates the Byzantine validators. OnSlot runs at the end of
// every slot with full access to the simulation (global knowledge, per the
// strong-adversary model).
type Adversary interface {
	OnSlot(s *Simulation, slot types.Slot)
}

// Config parameterizes a simulation run.
type Config struct {
	// Validators is the total validator count (honest + Byzantine).
	Validators int
	// Spec holds protocol constants; use types.CompressedSpec to shorten
	// leak time scales in tests.
	Spec types.Spec
	// Byzantine lists adversary-controlled validators. They are bridging
	// network nodes and perform no honest duties.
	Byzantine []types.ValidatorIndex
	// PartitionOf assigns each validator a partition id (pre-GST). Nil
	// means a single partition.
	PartitionOf func(types.ValidatorIndex) int
	// GST is the slot at which partitions heal.
	GST types.Slot
	// Delay is the in-partition message delay in slots.
	Delay types.Slot
	// DropRate injects first-attempt delivery failures.
	DropRate float64
	// Seed drives every pseudo-random choice (proposer schedule, drops).
	Seed int64
	// ShuffledDuties re-assigns attestation duty slots pseudo-randomly
	// every epoch (as the spec's committee shuffling does) instead of
	// the fixed v-mod-32 assignment. The bouncing analysis assumes
	// per-epoch random placement, which shuffling provides natively.
	ShuffledDuties bool
	// Adversary, if non-nil, receives an OnSlot call every slot.
	Adversary Adversary
	// OnEpoch, if non-nil, is called after boundary processing of each
	// new epoch.
	OnEpoch func(s *Simulation, epoch types.Epoch)
}

// Simulation is a running instance. Construct with New.
type Simulation struct {
	Cfg   Config
	Nodes []*beacon.Node
	Net   *network.Network[Message]

	byzantine map[types.ValidatorIndex]bool
	// oracle is an omniscient block tree used only for Safety auditing.
	oracle *blocktree.Tree
	slot   types.Slot
}

// ErrBadConfig reports an invalid configuration.
var ErrBadConfig = errors.New("sim: invalid config")

// New builds the simulation: nodes, network, partitions.
func New(cfg Config) (*Simulation, error) {
	if cfg.Validators <= 0 {
		return nil, fmt.Errorf("%w: validators = %d", ErrBadConfig, cfg.Validators)
	}
	if cfg.Spec.SlotsPerEpoch == 0 {
		return nil, fmt.Errorf("%w: zero spec", ErrBadConfig)
	}
	genesis := types.RootFromUint64(0)
	s := &Simulation{
		Cfg: cfg,
		Net: network.New[Message](network.Config{
			Nodes:    cfg.Validators,
			GST:      cfg.GST,
			Delay:    cfg.Delay,
			DropRate: cfg.DropRate,
			Seed:     cfg.Seed,
		}),
		byzantine: make(map[types.ValidatorIndex]bool, len(cfg.Byzantine)),
		oracle:    blocktree.New(genesis),
	}
	for _, b := range cfg.Byzantine {
		if int(b) >= cfg.Validators {
			return nil, fmt.Errorf("%w: byzantine index %d out of range", ErrBadConfig, b)
		}
		s.byzantine[b] = true
		s.Net.SetBridging(b, true)
	}
	s.Nodes = make([]*beacon.Node, cfg.Validators)
	for i := range s.Nodes {
		v := types.ValidatorIndex(i)
		n := beacon.NewNode(v, cfg.Validators, cfg.Spec, genesis)
		n.EnforceSlashing = !s.byzantine[v]
		s.Nodes[i] = n
		if cfg.PartitionOf != nil {
			s.Net.SetPartition(v, cfg.PartitionOf(v))
		}
	}
	return s, nil
}

// Slot returns the next slot to execute.
func (s *Simulation) Slot() types.Slot { return s.slot }

// IsByzantine reports whether v is adversary-controlled.
func (s *Simulation) IsByzantine(v types.ValidatorIndex) bool { return s.byzantine[v] }

// HonestIndices returns all honest validator indices in order.
func (s *Simulation) HonestIndices() []types.ValidatorIndex {
	out := make([]types.ValidatorIndex, 0, s.Cfg.Validators)
	for i := 0; i < s.Cfg.Validators; i++ {
		if !s.byzantine[types.ValidatorIndex(i)] {
			out = append(out, types.ValidatorIndex(i))
		}
	}
	return out
}

// ProposerAt returns the proposer of a slot: a seeded hash over the full
// initial validator set, identical on every view.
func (s *Simulation) ProposerAt(slot types.Slot) types.ValidatorIndex {
	h := crypto.HashItems(uint64(slot), uint64(s.Cfg.Seed), 0x9e3779b9)
	v := uint64(h[0])<<24 | uint64(h[1])<<16 | uint64(h[2])<<8 | uint64(h[3])
	return types.ValidatorIndex(v % uint64(s.Cfg.Validators))
}

// AttestationSlot returns the slot within epoch at which validator v
// performs its once-per-epoch attestation duty. With ShuffledDuties the
// assignment changes pseudo-randomly every epoch; otherwise it is the fixed
// v-mod-SlotsPerEpoch slot.
func (s *Simulation) AttestationSlot(v types.ValidatorIndex, epoch types.Epoch) types.Slot {
	if s.Cfg.ShuffledDuties {
		h := crypto.HashItems(uint64(v), uint64(epoch), uint64(s.Cfg.Seed), 0x5bd1e995)
		off := (uint64(h[0])<<8 | uint64(h[1])) % s.Cfg.Spec.SlotsPerEpoch
		return epoch.StartSlot() + types.Slot(off)
	}
	return epoch.StartSlot() + types.Slot(uint64(v)%s.Cfg.Spec.SlotsPerEpoch)
}

// Broadcast sends a message from a validator and records blocks in the
// Safety oracle.
func (s *Simulation) Broadcast(from types.ValidatorIndex, at types.Slot, m Message) {
	s.recordOracle(m)
	s.Net.Broadcast(from, at, m)
}

// SendDirect schedules an adversary-controlled point-to-point delivery.
func (s *Simulation) SendDirect(from, to types.ValidatorIndex, deliverAt types.Slot, m Message) {
	s.recordOracle(m)
	s.Net.SendDirect(from, to, deliverAt, m)
}

// BroadcastAs sends a message routed as if the sender belonged to the given
// partition — the Byzantine one-face-per-partition primitive.
func (s *Simulation) BroadcastAs(from types.ValidatorIndex, partition int, at types.Slot, m Message) {
	s.recordOracle(m)
	s.Net.BroadcastAs(from, partition, at, m)
}

func (s *Simulation) recordOracle(m Message) {
	if m.Block != nil && !s.oracle.Has(m.Block.Root) {
		_ = s.oracle.Add(*m.Block)
	}
}

// Oracle exposes the omniscient tree for Safety audits.
func (s *Simulation) Oracle() *blocktree.Tree { return s.oracle }

// Step executes one slot.
func (s *Simulation) Step() error {
	slot := s.slot

	// 1. Deliver messages.
	for i := range s.Nodes {
		for _, m := range s.Net.Deliveries(types.ValidatorIndex(i), slot) {
			switch {
			case m.Block != nil:
				s.Nodes[i].ReceiveBlock(*m.Block)
			case m.Att != nil:
				s.Nodes[i].ReceiveAttestation(*m.Att)
			}
		}
	}

	// 2. Epoch boundary.
	if slot.IsEpochStart() && slot > 0 {
		epoch := slot.Epoch()
		for _, n := range s.Nodes {
			if _, err := n.ProcessEpochBoundary(epoch); err != nil {
				return fmt.Errorf("sim: slot %d: %w", slot, err)
			}
		}
		if s.Cfg.OnEpoch != nil {
			s.Cfg.OnEpoch(s, epoch)
		}
	}

	// 3. Adversary acts before honest duties — the strong adversary can
	// always schedule its messages ahead of honest actions in a slot.
	if s.Cfg.Adversary != nil {
		s.Cfg.Adversary.OnSlot(s, slot)
	}

	// 4. Honest proposer.
	if p := s.ProposerAt(slot); !s.byzantine[p] && slot > 0 {
		b, err := s.Nodes[p].ProduceBlock(slot)
		if err == nil {
			s.Broadcast(p, slot, Message{Block: &b})
		}
	}

	// 5. Honest attesters.
	epoch := slot.Epoch()
	for i := range s.Nodes {
		v := types.ValidatorIndex(i)
		if s.byzantine[v] || s.AttestationSlot(v, epoch) != slot {
			continue
		}
		a, err := s.Nodes[i].ProduceAttestation(slot)
		if err == nil {
			s.Broadcast(v, slot, Message{Att: &a})
		}
	}

	s.slot++
	return nil
}

// RunEpochs executes whole epochs from the current slot.
func (s *Simulation) RunEpochs(n int) error {
	end := s.slot + types.Slot(uint64(n)*s.Cfg.Spec.SlotsPerEpoch)
	for s.slot < end {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// SafetyViolation describes a detected conflicting finalization.
type SafetyViolation struct {
	NodeA, NodeB types.ValidatorIndex
	A, B         types.Checkpoint
}

// Error renders the violation.
func (v SafetyViolation) Error() string {
	return fmt.Sprintf("sim: conflicting finalization: node %d finalized %s, node %d finalized %s",
		v.NodeA, v.A, v.NodeB, v.B)
}

// CheckFinalitySafety audits all honest nodes' finalized checkpoints
// against the omniscient tree and returns a SafetyViolation if two of them
// are on different branches — the paper's Safety violation (1). Returns nil
// when Safety holds.
func (s *Simulation) CheckFinalitySafety() *SafetyViolation {
	honest := s.HonestIndices()
	for i := 0; i < len(honest); i++ {
		for j := i + 1; j < len(honest); j++ {
			a := s.Nodes[honest[i]].Finalized()
			b := s.Nodes[honest[j]].Finalized()
			if err := ffg.CheckConflict(a, b, s.oracle.IsAncestor); err != nil {
				return &SafetyViolation{NodeA: honest[i], NodeB: honest[j], A: a, B: b}
			}
		}
	}
	return nil
}

// ByzantineProportionOn computes the Byzantine stake proportion in the view
// of node observer — the paper's Safety threshold metric (2).
func (s *Simulation) ByzantineProportionOn(observer types.ValidatorIndex) float64 {
	reg := s.Nodes[observer].Registry
	total := reg.TotalStake()
	if total == 0 {
		return 0
	}
	var byz types.Gwei
	for v := range s.byzantine {
		byz += reg.Stake(v)
	}
	return float64(byz) / float64(total)
}
