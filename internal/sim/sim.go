// Package sim drives full-protocol simulations at paper scale. The kernel
// is view-cohort structured: instead of one beacon node per validator, the
// simulator materializes one beacon.Node per *cohort* — a set of validators
// that provably hold identical views. Honest validators sharing a pre-GST
// partition (and the global delay class) form one cohort; all Byzantine
// validators, who bridge every partition and hear everything, form another.
// Attestations are produced once per cohort per duty slot and delivered as
// batches, so a slot costs O(cohorts^2 + validators) instead of
// O(validators^2), which is what lets the full protocol run at hundreds of
// thousands of validators.
//
// Two per-validator effects survive cohorting and are modeled explicitly:
//
//   - a proposer applies its own block immediately but the rest of its
//     cohort only sees it one network delay later; the kernel applies the
//     block to the shared view at once and embargoes it — head computations
//     for other members skip embargoed blocks until their broadcast copy
//     arrives (beacon.Node.SetVisibility / forkchoice.HeadFiltered);
//   - an adversary with within-delta timing power can place individual
//     honest validators on different views (the probabilistic bouncing
//     attack); SetDutyView reassigns which cohort view a validator performs
//     its duties from, per epoch, without moving it between network
//     partitions.
//
// Setting Config.PerValidatorViews gives every validator a singleton
// cohort, reproducing the pre-refactor one-node-per-validator simulator
// exactly (including the link-outage drop schedule); the equivalence tests
// use it as the oracle to assert bit-identical EpochMetrics histories.
//
// The engine is slot-driven. Each slot it (1) delivers network messages,
// (2) runs epoch-boundary processing on every cohort at epoch starts,
// (3) gives the adversary its turn, (4) lets the slot's honest proposer
// extend its cohort's head, and (5) batches the attestations of honest
// validators with this slot's duty, one batch per (duty view, home cohort).
package sim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/attestation"
	"repro/internal/beacon"
	"repro/internal/blocktree"
	"repro/internal/crypto"
	"repro/internal/ffg"
	"repro/internal/forkchoice"
	"repro/internal/network"
	"repro/internal/types"
	"repro/internal/validator"
)

// AttBatch carries one attestation data value cast by many validators — the
// wire form of a cohort's duty slot. Receivers process it as one
// attestation per listed validator, in listed order.
type AttBatch struct {
	Data       attestation.Data
	Validators []types.ValidatorIndex
}

// Message is the wire format: exactly one field is set.
type Message struct {
	Block *blocktree.Block
	Att   *attestation.Attestation
	Batch *AttBatch
}

// Adversary coordinates the Byzantine validators. OnSlot runs every slot
// (after boundary processing, before honest duties) with full access to the
// simulation — global knowledge, per the strong-adversary model.
type Adversary interface {
	OnSlot(s *Simulation, slot types.Slot)
}

// Config parameterizes a simulation run.
type Config struct {
	// Validators is the total validator count (honest + Byzantine).
	Validators int
	// Spec holds protocol constants; use types.CompressedSpec to shorten
	// leak time scales in tests.
	Spec types.Spec
	// Byzantine lists adversary-controlled validators. They bridge
	// network partitions and perform no honest duties. Duplicate indices
	// are rejected.
	Byzantine []types.ValidatorIndex
	// PartitionOf assigns each validator a partition id (pre-GST). Nil
	// means a single partition.
	PartitionOf func(types.ValidatorIndex) int
	// GST is the slot at which partitions heal.
	GST types.Slot
	// Delay is the in-partition message delay in slots (>= 1).
	Delay types.Slot
	// DropRate injects link outages between distinct partitions; dropped
	// deliveries are retransmitted with extra delay (see
	// internal/network).
	DropRate float64
	// Seed drives every pseudo-random choice (proposer schedule, link
	// outages).
	Seed int64
	// ShuffledDuties re-assigns attestation duty slots pseudo-randomly
	// every epoch (as the spec's committee shuffling does) instead of
	// the fixed v-mod-32 assignment. The bouncing analysis assumes
	// per-epoch random placement, which shuffling provides natively.
	ShuffledDuties bool
	// PerValidatorViews gives every validator its own singleton cohort —
	// the pre-refactor one-node-per-validator layout. It is retained as
	// the equivalence oracle for tests and costs O(validators^2) per
	// slot; production scenarios leave it off. The bit-identical
	// equivalence contract covers every run that does not reassign duty
	// views: SetDutyView is a cohort-native primitive (the Bouncer's
	// placement step), and under singleton cohorts it models the
	// adversary differently, so bouncing runs are not oracle-comparable.
	PerValidatorViews bool
	// OracleForkChoice runs every view on the map-based recompute-
	// everything fork-choice engine (forkchoice.NewOracle) instead of the
	// incremental proto-array default. The two are bit-identical — the
	// equivalence suite asserts it — so this is a test-oracle knob, not a
	// behavioral mode; production scenarios leave it off.
	OracleForkChoice bool
	// Adversary, if non-nil, receives an OnSlot call every slot.
	Adversary Adversary
	// OnEpoch, if non-nil, is called after boundary processing of each
	// new epoch.
	OnEpoch func(s *Simulation, epoch types.Epoch)
	// CompactWatermark controls cold-spine compaction of block trees
	// during long finality stalls (blocktree.Compact). When a view's tree
	// reaches the watermark node count at an epoch boundary, the unbranched
	// spine older than an 8-epoch retention window is folded into skip
	// segments, keeping fork-choice and memory cost flat at arbitrary leak
	// depth. 0 means the default watermark (1024 nodes); < 0 disables
	// compaction entirely; > 0 sets an explicit watermark. Compaction is
	// behavior-neutral and automatically held off in configurations where
	// in-flight or adversary-held messages could reference arbitrarily old
	// roots (custom Adversary, lossy links, finite GST still in its
	// settling window).
	CompactWatermark int
}

// Compaction tuning: the default node-count watermark at which a view's
// tree folds its cold spine, and the retention window (in epochs) below
// which blocks are never folded — wide enough to cover every in-flight
// message age under the gates maybeCompact enforces, and aligned with the
// attestation pool's own 8-epoch pruning horizon.
const (
	defaultCompactWatermark = 1024
	compactWindowEpochs     = 8
)

// embargo records a block a cohort member produced and self-applied, whose
// broadcast copy has not yet reached the rest of the cohort: until `until`,
// head computations for members other than the producer skip it.
type embargo struct {
	cohort   int
	producer types.ValidatorIndex
	root     types.Root
	until    types.Slot
}

// Simulation is a running instance. Construct with New.
type Simulation struct {
	Cfg Config
	Net *network.Network[Message]

	cohorts   []*Cohort
	cohortOf  []int // validator -> home cohort (network routing)
	dutyView  []int // validator -> cohort whose view it acts from
	honest    []types.ValidatorIndex
	byzantine map[types.ValidatorIndex]bool
	embargoes []embargo
	// dutyRoster caches one epoch's attestation duties: dutyRoster[off]
	// lists the honest validators whose duty falls on the epoch's off-th
	// slot, ascending. Built once per epoch instead of scanning every
	// honest validator every slot.
	dutyRoster      [][]types.ValidatorIndex
	dutyRosterEpoch types.Epoch
	dutyRosterSet   bool
	// oracle is an omniscient block tree used only for Safety auditing.
	oracle *blocktree.Tree
	slot   types.Slot
}

// ErrBadConfig reports an invalid configuration.
var ErrBadConfig = errors.New("sim: invalid config")

// New builds the simulation: cohorts, views, network.
func New(cfg Config) (*Simulation, error) {
	return build(cfg, false)
}

// NewShell builds a simulation whose cohort views are left unmaterialized:
// configuration is validated and the cohort/network layout wired exactly as
// New does, but the per-cohort beacon.Node construction — the dominant
// constructor cost at paper scale (registry, proto-array columns, pool,
// all sized to the validator count) — is skipped, because a Restore or
// Adopt would discard it wholesale. The returned simulation MUST be given
// state via Restore or Adopt before it is stepped; the warm-start resume
// path is the intended caller.
func NewShell(cfg Config) (*Simulation, error) {
	return build(cfg, true)
}

func build(cfg Config, shell bool) (*Simulation, error) {
	if cfg.Validators <= 0 {
		return nil, fmt.Errorf("%w: validators = %d", ErrBadConfig, cfg.Validators)
	}
	if cfg.Spec.SlotsPerEpoch == 0 {
		return nil, fmt.Errorf("%w: zero spec", ErrBadConfig)
	}
	if cfg.Delay == 0 {
		return nil, fmt.Errorf("%w: delay must be >= 1 slot (same-slot delivery would race the slot's already-drained inbox)", ErrBadConfig)
	}
	byzantine := make(map[types.ValidatorIndex]bool, len(cfg.Byzantine))
	for _, b := range cfg.Byzantine {
		if int(b) >= cfg.Validators {
			return nil, fmt.Errorf("%w: byzantine index %d out of range", ErrBadConfig, b)
		}
		if byzantine[b] {
			return nil, fmt.Errorf("%w: duplicate byzantine index %d", ErrBadConfig, b)
		}
		byzantine[b] = true
	}
	// Honest partition ids must be non-negative: negative ids would
	// collide with the Byzantine cohort's internal partition sentinel and
	// silently merge views.
	partitions := map[int]bool{}
	for i := 0; i < cfg.Validators; i++ {
		v := types.ValidatorIndex(i)
		if byzantine[v] {
			continue
		}
		p := 0
		if cfg.PartitionOf != nil {
			p = cfg.PartitionOf(v)
		}
		if p < 0 {
			return nil, fmt.Errorf("%w: partition id %d for validator %d (ids must be >= 0)", ErrBadConfig, p, v)
		}
		partitions[p] = true
	}
	if cfg.DropRate < 0 || cfg.DropRate > 1 {
		return nil, fmt.Errorf("%w: drop rate %v outside [0, 1]", ErrBadConfig, cfg.DropRate)
	}
	// Drops are link outages BETWEEN partitions (members of one partition
	// share a view; there is no lossy link inside it), so a drop rate on
	// a single-partition population would silently inject no loss at all.
	// Reject the combination instead of measuring a lossless baseline.
	if cfg.DropRate > 0 && len(partitions) < 2 {
		return nil, fmt.Errorf("%w: drop rate %v needs >= 2 partitions (losses are cross-partition link outages; a single partition has no lossy links)", ErrBadConfig, cfg.DropRate)
	}

	genesis := types.RootFromUint64(0)
	s := &Simulation{
		Cfg:       cfg,
		byzantine: byzantine,
		oracle:    blocktree.New(genesis),
	}
	s.cohorts, s.cohortOf = buildCohorts(cfg, byzantine, genesis, shell)
	s.Net = wireNetwork(cfg, s.cohorts)
	s.dutyView = make([]int, cfg.Validators)
	copy(s.dutyView, s.cohortOf)
	s.honest = make([]types.ValidatorIndex, 0, cfg.Validators-len(byzantine))
	for i := 0; i < cfg.Validators; i++ {
		if v := types.ValidatorIndex(i); !byzantine[v] {
			s.honest = append(s.honest, v)
		}
	}
	return s, nil
}

// Slot returns the next slot to execute.
func (s *Simulation) Slot() types.Slot { return s.slot }

// IsByzantine reports whether v is adversary-controlled.
func (s *Simulation) IsByzantine(v types.ValidatorIndex) bool { return s.byzantine[v] }

// HonestIndices returns all honest validator indices in ascending order.
// The slice is computed once at construction and shared; callers must not
// mutate it.
func (s *Simulation) HonestIndices() []types.ValidatorIndex { return s.honest }

// Cohorts returns the cohort list in construction order (honest cohorts by
// first partition appearance, the Byzantine cohort where its first member
// falls). Callers must not mutate it.
func (s *Simulation) Cohorts() []*Cohort { return s.cohorts }

// View returns the materialized view validator v currently performs its
// duties from — its home cohort's node unless SetDutyView reassigned it.
func (s *Simulation) View(v types.ValidatorIndex) *beacon.Node {
	return s.cohorts[s.dutyView[v]].Node
}

// HomeCohort returns v's home cohort (network routing and metrics
// attribution, independent of duty-view reassignment).
func (s *Simulation) HomeCohort(v types.ValidatorIndex) *Cohort {
	return s.cohorts[s.cohortOf[v]]
}

// SetDutyView makes validator v perform its duties (attestations,
// proposals) from the home-cohort view of validator `like`, modeling an
// adversary whose within-delta message timing decides which view a
// validator acts on (the bouncing attack's placement step). Network routing
// and metrics attribution stay with v's home cohort. This is a cohort-mode
// primitive: under PerValidatorViews the "view of like's cohort" is like's
// own node, a different (coarser) adversary model, so runs using it are
// outside the cohort-vs-oracle equivalence contract.
func (s *Simulation) SetDutyView(v, like types.ValidatorIndex) {
	s.dutyView[v] = s.cohortOf[like]
}

// ProposerAt returns the proposer of a slot: a seeded hash over the full
// initial validator set, identical on every view.
func (s *Simulation) ProposerAt(slot types.Slot) types.ValidatorIndex {
	h := crypto.HashItems(uint64(slot), uint64(s.Cfg.Seed), 0x9e3779b9)
	v := uint64(h[0])<<24 | uint64(h[1])<<16 | uint64(h[2])<<8 | uint64(h[3])
	return types.ValidatorIndex(v % uint64(s.Cfg.Validators))
}

// AttestationSlot returns the slot within epoch at which validator v
// performs its once-per-epoch attestation duty. With ShuffledDuties the
// assignment changes pseudo-randomly every epoch; otherwise it is the fixed
// v-mod-SlotsPerEpoch slot.
func (s *Simulation) AttestationSlot(v types.ValidatorIndex, epoch types.Epoch) types.Slot {
	if s.Cfg.ShuffledDuties {
		h := crypto.HashItems(uint64(v), uint64(epoch), uint64(s.Cfg.Seed), 0x5bd1e995)
		off := (uint64(h[0])<<8 | uint64(h[1])) % s.Cfg.Spec.SlotsPerEpoch
		return epoch.StartSlot() + types.Slot(off)
	}
	return epoch.StartSlot() + types.Slot(uint64(v)%s.Cfg.Spec.SlotsPerEpoch)
}

// Broadcast sends a message from a validator (routed via its home cohort)
// and records blocks in the Safety oracle.
func (s *Simulation) Broadcast(from types.ValidatorIndex, at types.Slot, m Message) {
	s.recordOracle(m)
	s.Net.Broadcast(network.NodeID(s.cohortOf[from]), at, m)
}

// SendDirect schedules an adversary-controlled point-to-point delivery.
// The message reaches the whole cohort of `to` — with shared views, a
// cohort member's inbox is the cohort's inbox.
func (s *Simulation) SendDirect(from, to types.ValidatorIndex, deliverAt types.Slot, m Message) {
	s.recordOracle(m)
	s.Net.SendDirect(network.NodeID(s.cohortOf[from]), network.NodeID(s.cohortOf[to]), deliverAt, m)
}

// BroadcastAs sends a message routed as if the sender belonged to the given
// partition — the Byzantine one-face-per-partition primitive.
func (s *Simulation) BroadcastAs(from types.ValidatorIndex, partition int, at types.Slot, m Message) {
	s.recordOracle(m)
	s.Net.BroadcastAs(network.NodeID(s.cohortOf[from]), partition, at, m)
}

func (s *Simulation) recordOracle(m Message) {
	if m.Block != nil && !s.oracle.Has(m.Block.Root) {
		_ = s.oracle.Add(*m.Block)
	}
}

// Oracle exposes the omniscient tree for Safety audits.
func (s *Simulation) Oracle() *blocktree.Tree { return s.oracle }

// expireEmbargoes drops embargoes whose broadcast copies arrive at `slot`
// (the arriving duplicate is deduplicated by the tree).
func (s *Simulation) expireEmbargoes(slot types.Slot) {
	if len(s.embargoes) == 0 {
		return
	}
	kept := s.embargoes[:0]
	for _, e := range s.embargoes {
		if e.until > slot {
			kept = append(kept, e)
		}
	}
	s.embargoes = kept
}

// visibilityFor builds the head-computation filter for cohort ci acting as
// `actor` (the actor sees its own in-flight blocks; everyone else does
// not). hasActor=false hides every live embargoed block of the cohort. A
// nil return means the unfiltered view.
func (s *Simulation) visibilityFor(ci int, actor types.ValidatorIndex, hasActor bool) func(types.Root) bool {
	var hidden []types.Root
	for _, e := range s.embargoes {
		if e.cohort == ci && (!hasActor || e.producer != actor) {
			hidden = append(hidden, e.root)
		}
	}
	if len(hidden) == 0 {
		return nil
	}
	return func(r types.Root) bool {
		for _, h := range hidden {
			if h == r {
				return false
			}
		}
		return true
	}
}

// ownsLiveEmbargo reports whether validator v has a block of cohort ci
// still in flight (v then computes duties on a slightly newer view than its
// cohort mates).
func (s *Simulation) ownsLiveEmbargo(ci int, v types.ValidatorIndex) bool {
	for _, e := range s.embargoes {
		if e.cohort == ci && e.producer == v {
			return true
		}
	}
	return false
}

// Step executes one slot.
func (s *Simulation) Step() error {
	slot := s.slot
	s.expireEmbargoes(slot)

	// 1. Deliver messages, one drain per cohort endpoint.
	for _, c := range s.cohorts {
		for _, m := range s.Net.Deliveries(network.NodeID(c.Index), slot) {
			c.deliver(m)
		}
	}

	// 2. Epoch boundary, once per view. A singleton cohort processes as
	// its only member (seeing its own in-flight blocks, as the
	// pre-refactor per-validator node did); a shared view processes with
	// in-flight blocks hidden — the boundary outcome is identical either
	// way for sane delays, because an in-flight tip block is never the
	// ended epoch's checkpoint.
	if slot.IsEpochStart() && slot > 0 {
		epoch := slot.Epoch()
		for _, c := range s.cohorts {
			if len(c.Members) == 1 {
				c.Node.SetVisibility(s.visibilityFor(c.Index, c.Members[0], true))
			} else {
				c.Node.SetVisibility(s.visibilityFor(c.Index, 0, false))
			}
			_, err := c.Node.ProcessEpochBoundary(epoch)
			c.Node.SetVisibility(nil)
			if err != nil {
				return fmt.Errorf("sim: slot %d: %w", slot, err)
			}
		}
		s.maybeCompact(epoch)
		if s.Cfg.OnEpoch != nil {
			s.Cfg.OnEpoch(s, epoch)
		}
	}

	// 3. Adversary acts before honest duties — the strong adversary can
	// always schedule its messages ahead of honest actions in a slot.
	if s.Cfg.Adversary != nil {
		s.Cfg.Adversary.OnSlot(s, slot)
	}

	// 4. Honest proposer: produce from the proposer's duty view. Within
	// its own cohort the proposer holds the block at once, so it is
	// applied immediately and embargoed for the other members until the
	// broadcast copy lands — which is provably slot+Delay, since the
	// sender shares the receivers' partition. A proposer reassigned to a
	// foreign duty view (SetDutyView) broadcasts from its home partition,
	// whose delivery into the duty cohort may be slower (link outage,
	// pre-GST hold), so no early application is justified there: the duty
	// cohort receives the block like every other endpoint.
	if p := s.ProposerAt(slot); !s.byzantine[p] && slot > 0 {
		ci := s.dutyView[p]
		node := s.cohorts[ci].Node
		node.SetVisibility(s.visibilityFor(ci, p, true))
		b, err := node.ProduceBlockFor(slot, p)
		node.SetVisibility(nil)
		if err == nil {
			if ci == s.cohortOf[p] {
				node.ReceiveBlock(b)
				s.embargoes = append(s.embargoes, embargo{
					cohort: ci, producer: p, root: b.Root, until: slot + s.Cfg.Delay,
				})
			}
			s.Broadcast(p, slot, Message{Block: &b})
		}
	}

	// 5. Honest attesters: one batch per (duty view, home cohort) bucket,
	// computed once from the shared view; members with their own block
	// still in flight (the slot's proposer) attest individually on their
	// slightly newer view.
	s.attest(slot)

	s.slot++
	return nil
}

// dutyBucket groups a slot's attesters acting from one view and routed via
// one home cohort.
type dutyBucket struct {
	view, home int
	members    []types.ValidatorIndex
}

// dutyRosterFor returns the cached duty roster of the epoch, rebuilding it
// on epoch change. The roster depends only on (epoch, seed, shuffling), so
// one O(validators) pass serves the epoch's 32 slot scans.
func (s *Simulation) dutyRosterFor(epoch types.Epoch) [][]types.ValidatorIndex {
	if s.dutyRosterSet && s.dutyRosterEpoch == epoch {
		return s.dutyRoster
	}
	if s.dutyRoster == nil {
		// Consumption indexes by slot.PositionInEpoch() (the global
		// types.SlotsPerEpoch grid); production offsets come from
		// AttestationSlot, which spreads duties over the spec's own epoch
		// length. Size for both so a spec that differs from the global
		// constant neither panics on build nor on lookup — offsets beyond
		// the consumable window simply stay unread, exactly as the old
		// per-slot scan never matched them.
		n := uint64(types.SlotsPerEpoch)
		if s.Cfg.Spec.SlotsPerEpoch > n {
			n = s.Cfg.Spec.SlotsPerEpoch
		}
		s.dutyRoster = make([][]types.ValidatorIndex, n)
	}
	for i := range s.dutyRoster {
		s.dutyRoster[i] = s.dutyRoster[i][:0]
	}
	start := epoch.StartSlot()
	for _, v := range s.honest {
		off := s.AttestationSlot(v, epoch) - start
		s.dutyRoster[off] = append(s.dutyRoster[off], v)
	}
	s.dutyRosterEpoch = epoch
	s.dutyRosterSet = true
	return s.dutyRoster
}

func (s *Simulation) attest(slot types.Slot) {
	epoch := slot.Epoch()
	var buckets []*dutyBucket
	index := make(map[[2]int]*dutyBucket)
	for _, v := range s.dutyRosterFor(epoch)[slot.PositionInEpoch()] {
		key := [2]int{s.dutyView[v], s.cohortOf[v]}
		b, ok := index[key]
		if !ok {
			b = &dutyBucket{view: key[0], home: key[1]}
			index[key] = b
			buckets = append(buckets, b)
		}
		b.members = append(b.members, v)
	}
	sort.Slice(buckets, func(i, j int) bool {
		if buckets[i].view != buckets[j].view {
			return buckets[i].view < buckets[j].view
		}
		return buckets[i].home < buckets[j].home
	})

	for _, b := range buckets {
		node := s.cohorts[b.view].Node
		var plain, special []types.ValidatorIndex
		for _, v := range b.members {
			if s.ownsLiveEmbargo(b.view, v) {
				special = append(special, v)
			} else {
				plain = append(plain, v)
			}
		}
		if len(plain) > 0 {
			node.SetVisibility(s.visibilityFor(b.view, 0, false))
			d, err := node.AttestationData(slot)
			node.SetVisibility(nil)
			if err == nil {
				s.Broadcast(plain[0], slot, Message{Batch: &AttBatch{Data: d, Validators: plain}})
			}
		}
		for _, v := range special {
			node.SetVisibility(s.visibilityFor(b.view, v, true))
			d, err := node.AttestationData(slot)
			node.SetVisibility(nil)
			if err == nil {
				a := attestation.Attestation{Validator: v, Data: d}
				s.Broadcast(v, slot, Message{Att: &a})
			}
		}
	}
}

// maybeCompact folds the cold unbranched spine out of every view's block
// tree (and the safety-audit oracle tree) once it crosses the compaction
// watermark — the path that keeps per-epoch fork-choice cost flat when a
// leak stalls finality and PruneBelow never fires. Compaction is
// behavior-neutral only when nothing in flight or in an adversary's hand
// can reference a folded root, so it is held off whenever a custom
// Adversary is installed (the Bouncer pins roots captured at GST), links
// are lossy (retransmission age is unbounded in the worst case), or a
// finite GST's held pre-GST traffic — which can carry arbitrarily old
// branches — has not yet fully drained.
func (s *Simulation) maybeCompact(epoch types.Epoch) {
	wm := s.Cfg.CompactWatermark
	if wm < 0 {
		return
	}
	if wm == 0 {
		wm = defaultCompactWatermark
	}
	if s.Cfg.Adversary != nil || s.Cfg.DropRate != 0 {
		return
	}
	if s.Cfg.GST != network.Never &&
		s.slot < s.Cfg.GST+types.Slot(compactWindowEpochs*s.Cfg.Spec.SlotsPerEpoch) {
		return
	}
	if epoch <= compactWindowEpochs {
		return
	}
	olderThan := (epoch - compactWindowEpochs).StartSlot()
	for _, c := range s.cohorts {
		if c.Node.Tree.Len() >= wm {
			c.Node.CompactTree(olderThan)
		}
	}
	if s.oracle.Len() >= wm {
		s.compactOracle(olderThan)
	}
}

// compactOracle compacts the omniscient audit tree, pinning every
// checkpoint root any view can still present to CheckFinalitySafety (the
// audit resolves finalized-checkpoint ancestry against this tree).
func (s *Simulation) compactOracle(olderThan types.Slot) {
	pinned := make(map[types.Root]struct{}, 4*len(s.cohorts))
	for _, c := range s.cohorts {
		for _, cp := range c.Node.FFG.Justifieds() {
			pinned[cp.Root] = struct{}{}
		}
		pinned[c.Node.FFG.Finalized().Root] = struct{}{}
		pinned[c.Node.FFG.LatestJustified().Root] = struct{}{}
	}
	s.oracle.Compact(olderThan, func(r types.Root) bool {
		_, ok := pinned[r]
		return ok
	})
}

// Stats aggregates block-tree and fork-choice column retention across all
// materialized views plus the safety-audit oracle tree — the memory half
// of the leak-depth story, surfaced through cmd/leaksim verbose output.
type Stats struct {
	Cohorts int
	Tree    blocktree.Stats  // summed over cohort views
	Oracle  blocktree.Stats  // the omniscient audit tree
	Engine  forkchoice.Stats // summed over proto-array views (zero under the map oracle)
}

// Stats returns the simulation's current retention statistics.
func (s *Simulation) Stats() Stats {
	st := Stats{Cohorts: len(s.cohorts), Oracle: s.oracle.Stats()}
	for _, c := range s.cohorts {
		ts := c.Node.Tree.Stats()
		st.Tree.Nodes += ts.Nodes
		st.Tree.Segments += ts.Segments
		st.Tree.Folded += ts.Folded
		st.Tree.Bytes += ts.Bytes
		if pa, ok := c.Node.Votes.(*forkchoice.ProtoArray); ok {
			es := pa.Stats()
			st.Engine.Nodes += es.Nodes
			st.Engine.Validators += es.Validators
			st.Engine.Bytes += es.Bytes
		}
	}
	return st
}

// RunEpochs executes whole epochs from the current slot.
func (s *Simulation) RunEpochs(n int) error {
	end := s.slot + types.Slot(uint64(n)*s.Cfg.Spec.SlotsPerEpoch)
	for s.slot < end {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// SafetyViolation describes a detected conflicting finalization.
type SafetyViolation struct {
	NodeA, NodeB types.ValidatorIndex
	A, B         types.Checkpoint
}

// Error renders the violation.
func (v SafetyViolation) Error() string {
	return fmt.Sprintf("sim: conflicting finalization: node %d finalized %s, node %d finalized %s",
		v.NodeA, v.A, v.NodeB, v.B)
}

// CheckFinalitySafety audits the honest cohorts' finalized checkpoints
// against the omniscient tree and returns a SafetyViolation if two of them
// are on different branches — the paper's Safety violation (1). Returns nil
// when Safety holds. Two validators sharing a view cannot conflict, so the
// audit is quadratic in cohorts, not validators.
func (s *Simulation) CheckFinalitySafety() *SafetyViolation {
	for i := 0; i < len(s.cohorts); i++ {
		ca := s.cohorts[i]
		if ca.Byzantine {
			continue
		}
		for j := i + 1; j < len(s.cohorts); j++ {
			cb := s.cohorts[j]
			if cb.Byzantine {
				continue
			}
			a, b := ca.Node.Finalized(), cb.Node.Finalized()
			if err := ffg.CheckConflict(a, b, s.oracle.IsAncestor); err != nil {
				return &SafetyViolation{NodeA: ca.Members[0], NodeB: cb.Members[0], A: a, B: b}
			}
		}
	}
	return nil
}

// ByzantineProportionOn computes the Byzantine stake proportion in the view
// of validator observer — the paper's Safety threshold metric (2).
func (s *Simulation) ByzantineProportionOn(observer types.ValidatorIndex) float64 {
	return s.byzantineProportionIn(s.View(observer).Registry)
}

func (s *Simulation) byzantineProportionIn(reg *validator.Registry) float64 {
	total := reg.TotalStake()
	if total == 0 {
		return 0
	}
	var byz types.Gwei
	for _, v := range s.Cfg.Byzantine {
		byz += reg.Stake(v)
	}
	return float64(byz) / float64(total)
}
