package sim

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/network"
	"repro/internal/types"
)

// codecModes is the 2×2 view-layout × fork-choice matrix every codec
// property is checked across.
var codecModes = []struct {
	name                           string
	perValidator, oracleForkChoice bool
}{
	{"cohort+proto-array", false, false},
	{"cohort+map-oracle", false, true},
	{"per-validator+proto-array", true, false},
	{"per-validator+map-oracle", true, true},
}

// compactedCfg is the compaction-exercising complement of snapshotCfg:
// lossless synchronous links under a permanent partition (the compaction
// gates require DropRate = 0 and GST = Never), with a watermark low
// enough that every view's tree has folded skip segments by the snapshot
// point.
func compactedCfg(perValidator, oracleForkChoice bool) Config {
	return Config{
		Validators: 16, Spec: types.CompressedSpec(1 << 16),
		GST: network.Never, Delay: 1, Seed: 3,
		PartitionOf: halfSplit(16), CompactWatermark: 32,
		PerValidatorViews: perValidator, OracleForkChoice: oracleForkChoice,
	}
}

// encodeSnapshot serializes through the full durable frame and sanity
// checks the declared length.
func encodeSnapshot(t *testing.T, sn *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := sn.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// TestSnapshotCodecRoundTrip is the codec contract: a decoded snapshot
// restores bit-identically — continuing it reproduces the original
// continuation's per-epoch metrics exactly — and re-encoding it
// reproduces the original bytes (the codec is canonical). Checked across
// the 2×2 view-layout × fork-choice matrix, for both a messaging-rich
// state (link outages, shuffled duties, held pre-GST cross-partition
// traffic, live embargoes) and a mid-leak compacted state (folded skip
// segments in every tree).
func TestSnapshotCodecRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		cfg    func(perValidator, oracleForkChoice bool) Config
		snapAt int
		total  int
		// compacted requires the state to actually carry folded segments,
		// otherwise the case pins nothing.
		compacted bool
	}{
		{"held-traffic", snapshotCfg, 6, 18, false},
		{"compacted", compactedCfg, 15, 27, true},
	}
	for _, tc := range cases {
		for _, mode := range codecModes {
			t.Run(tc.name+"/"+mode.name, func(t *testing.T) {
				cfg := tc.cfg(mode.perValidator, mode.oracleForkChoice)
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.RunEpochs(tc.snapAt); err != nil {
					t.Fatal(err)
				}
				if tc.compacted {
					if st := s.Stats(); st.Tree.Folded == 0 {
						t.Fatalf("run not compacted at snapshot point (stats %+v)", st)
					}
				}
				snap := s.Snapshot()
				suffix := runRecorded(t, s, tc.total-tc.snapAt)

				blob := encodeSnapshot(t, snap)
				decoded, err := ReadSnapshot(bytes.NewReader(blob))
				if err != nil {
					t.Fatalf("ReadSnapshot: %v", err)
				}
				if got, want := decoded.Slot(), snap.Slot(); got != want {
					t.Fatalf("decoded slot = %d, want %d", got, want)
				}
				if decoded.Bytes() <= 0 {
					t.Fatalf("decoded snapshot footprint = %d, want > 0", decoded.Bytes())
				}

				// Canonical form: encode(decode(blob)) == blob.
				if reblob := encodeSnapshot(t, decoded); !bytes.Equal(reblob, blob) {
					t.Fatalf("re-encoded snapshot differs: %d vs %d bytes", len(reblob), len(blob))
				}

				// Continuation equivalence: the decoded snapshot's run must
				// match the original's bit-for-bit.
				warm, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := warm.Restore(decoded); err != nil {
					t.Fatalf("Restore(decoded): %v", err)
				}
				replay := runRecorded(t, warm, tc.total-tc.snapAt)
				if !reflect.DeepEqual(replay, suffix) {
					t.Fatalf("decoded snapshot's continuation diverged:\n  decoded:  %+v\n  original: %+v", replay, suffix)
				}
			})
		}
	}
}

// TestSnapshotCodecRejectsDamage: every damaged form of a valid blob —
// truncation at any layer, a flipped bit in header or payload, a version
// skew — fails ReadSnapshot with ErrSnapshotCodec; no partially-decoded
// snapshot escapes.
func TestSnapshotCodecRejectsDamage(t *testing.T) {
	s, err := New(snapshotCfg(false, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(4); err != nil {
		t.Fatal(err)
	}
	blob := encodeSnapshot(t, s.Snapshot())

	damage := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"torn-header", func(b []byte) []byte { return b[:10] }},
		{"torn-payload", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated-tail", func(b []byte) []byte { return b[:len(b)-1] }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"version-skew", func(b []byte) []byte { b[4]++; return b }},
		{"length-lie", func(b []byte) []byte { b[8] ^= 0x80; return b }},
		{"checksum-flip", func(b []byte) []byte { b[12] ^= 0x01; return b }},
		{"payload-bit-flip", func(b []byte) []byte { b[20+len(b)/3] ^= 0x10; return b }},
		{"payload-last-byte", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			bad := d.mut(append([]byte(nil), blob...))
			sn, err := ReadSnapshot(bytes.NewReader(bad))
			if err == nil {
				t.Fatal("ReadSnapshot accepted damaged input")
			}
			if !errors.Is(err, ErrSnapshotCodec) {
				t.Fatalf("error %v does not wrap ErrSnapshotCodec", err)
			}
			if sn != nil {
				t.Fatal("damaged read returned a non-nil snapshot")
			}
		})
	}
}

// TestSnapshotCodecAdoptedSnapshot: a snapshot whose state was moved out
// by Adopt refuses to encode rather than writing an empty shell.
func TestSnapshotCodecAdoptedSnapshot(t *testing.T) {
	cfg := snapshotCfg(false, false)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunEpochs(2); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	shell, err := NewShell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := shell.Adopt(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTo accepted an adopted (moved-out) snapshot")
	}
}
