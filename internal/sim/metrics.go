package sim

import "repro/internal/types"

// EpochMetrics snapshots the aggregate state of all honest views at one
// epoch boundary — the time series the paper's figures are made of. The
// values are defined over honest validators; since every validator in a
// cohort holds the cohort's view, the kernel computes them once per cohort
// and weighs counts by membership, which is bit-identical to the
// per-validator definition.
type EpochMetrics struct {
	Epoch types.Epoch
	// MinFinalized / MaxFinalized are the extremes of honest nodes'
	// finalized epochs (their divergence signals partitioned finality).
	MinFinalized, MaxFinalized types.Epoch
	// MaxJustified is the highest justified epoch across honest views.
	MaxJustified types.Epoch
	// InLeak counts honest validators whose view is currently in an
	// inactivity leak.
	InLeak int
	// MinTotalStake / MaxTotalStake bound the per-view total in-set
	// stake.
	MinTotalStake, MaxTotalStake types.Gwei
	// MaxByzProportion is the highest Byzantine stake proportion across
	// honest views.
	MaxByzProportion float64
}

// MetricsAt computes the metrics for the current state at the given epoch.
// (It was named Snapshot before run-state snapshotting existed; Snapshot
// now captures full protocol state for Restore.)
func (s *Simulation) MetricsAt(epoch types.Epoch) EpochMetrics {
	m := EpochMetrics{Epoch: epoch}
	first := true
	for _, c := range s.cohorts {
		if c.Byzantine || len(c.Members) == 0 {
			continue
		}
		n := c.Node
		fin := n.Finalized().Epoch
		just := n.FFG.LatestJustified().Epoch
		total := n.Registry.TotalStake()
		if first {
			m.MinFinalized, m.MaxFinalized = fin, fin
			m.MinTotalStake, m.MaxTotalStake = total, total
			first = false
		}
		if fin < m.MinFinalized {
			m.MinFinalized = fin
		}
		if fin > m.MaxFinalized {
			m.MaxFinalized = fin
		}
		if just > m.MaxJustified {
			m.MaxJustified = just
		}
		if total < m.MinTotalStake {
			m.MinTotalStake = total
		}
		if total > m.MaxTotalStake {
			m.MaxTotalStake = total
		}
		if n.FFG.InLeak(epoch, s.Cfg.Spec) {
			m.InLeak += len(c.Members)
		}
		if p := s.byzantineProportionIn(n.Registry); p > m.MaxByzProportion {
			m.MaxByzProportion = p
		}
	}
	return m
}

// Recorder accumulates per-epoch metrics; install its Hook as
// Config.OnEpoch.
type Recorder struct {
	History []EpochMetrics
}

// Hook is the Config.OnEpoch callback.
func (r *Recorder) Hook(s *Simulation, epoch types.Epoch) {
	r.History = append(r.History, s.MetricsAt(epoch))
}

// FinalityStalledSince returns the longest suffix of recorded epochs during
// which MaxFinalized did not advance (0 when the history is empty or
// finality moved at the last sample).
func (r *Recorder) FinalityStalledSince() int {
	if len(r.History) < 2 {
		return 0
	}
	last := r.History[len(r.History)-1].MaxFinalized
	stalled := 0
	for i := len(r.History) - 2; i >= 0; i-- {
		if r.History[i].MaxFinalized != last {
			break
		}
		stalled++
	}
	return stalled
}
