package sim

import (
	"repro/internal/attestation"
	"repro/internal/beacon"
	"repro/internal/forkchoice"
	"repro/internal/network"
	"repro/internal/types"
)

// Cohort is one materialized view and the set of validators holding it.
//
// All honest validators sharing a partition receive exactly the same
// messages at the same slots (intra-partition delivery is uniform, drops
// are link-level, and the only per-validator difference — a proposer
// holding its own block one delay early — is tracked separately as an
// embargo), so they provably hold identical views and one beacon.Node can
// serve the whole cohort. All Byzantine validators bridge every partition
// and hear everything, so they share a single omniscient view too.
type Cohort struct {
	// Index is the cohort's position in Simulation.Cohorts and its
	// network endpoint id.
	Index int
	// Node is the materialized view every member holds.
	Node *beacon.Node
	// Partition is the pre-GST network partition (and drop-link class) of
	// the members; -1 for the Byzantine cohort.
	Partition int
	// Byzantine marks the adversary's cohort.
	Byzantine bool
	// Members lists the validators holding this view, ascending. Callers
	// must not mutate it.
	Members []types.ValidatorIndex
}

// byzPartition is the drop-link class of the bridging Byzantine cohort;
// bridging dominates reachability, so the value only needs to differ from
// every honest partition id.
const byzPartition = -1

// buildCohorts groups the validator set into cohorts. In the default mode,
// honest validators cohort by partition (in order of first appearance,
// scanning ascending validator indices) and all Byzantine validators form
// one bridging cohort. With cfg.PerValidatorViews every validator is its
// own cohort, which reproduces the pre-refactor one-node-per-validator
// layout exactly and serves as the equivalence oracle in tests.
//
// shell skips the per-cohort Node construction (see NewShell): the cohort
// layout, membership, and partition assignment are built as usual but
// every Cohort.Node is left nil for a later Restore/Adopt to install.
func buildCohorts(cfg Config, byzantine map[types.ValidatorIndex]bool, genesis types.Root, shell bool) (cohorts []*Cohort, cohortOf []int) {
	cohortOf = make([]int, cfg.Validators)
	partitionOf := func(v types.ValidatorIndex) int {
		if byzantine[v] {
			return byzPartition
		}
		if cfg.PartitionOf != nil {
			return cfg.PartitionOf(v)
		}
		return 0
	}

	newCohort := func(first types.ValidatorIndex) *Cohort {
		c := &Cohort{
			Index:     len(cohorts),
			Partition: partitionOf(first),
			Byzantine: byzantine[first],
		}
		if !shell {
			var votes forkchoice.Engine = forkchoice.NewProtoArray()
			if cfg.OracleForkChoice {
				votes = forkchoice.NewOracle()
			}
			c.Node = beacon.NewNodeWithForkChoice(first, cfg.Validators, cfg.Spec, genesis, votes)
			c.Node.EnforceSlashing = !c.Byzantine
		}
		cohorts = append(cohorts, c)
		return c
	}

	if cfg.PerValidatorViews {
		for i := 0; i < cfg.Validators; i++ {
			v := types.ValidatorIndex(i)
			c := newCohort(v)
			c.Members = []types.ValidatorIndex{v}
			cohortOf[i] = c.Index
		}
		return cohorts, cohortOf
	}

	byKey := make(map[int]*Cohort)
	for i := 0; i < cfg.Validators; i++ {
		v := types.ValidatorIndex(i)
		key := partitionOf(v)
		c, ok := byKey[key]
		if !ok {
			c = newCohort(v)
			byKey[key] = c
		}
		c.Members = append(c.Members, v)
		cohortOf[i] = c.Index
	}
	return cohorts, cohortOf
}

// wireNetwork builds the message bus with one endpoint per cohort.
func wireNetwork(cfg Config, cohorts []*Cohort) *network.Network[Message] {
	net := network.New[Message](network.Config{
		Nodes:    len(cohorts),
		GST:      cfg.GST,
		Delay:    cfg.Delay,
		DropRate: cfg.DropRate,
		Seed:     cfg.Seed,
	})
	for _, c := range cohorts {
		net.SetPartition(network.NodeID(c.Index), c.Partition)
		if c.Byzantine {
			net.SetBridging(network.NodeID(c.Index), true)
		}
	}
	return net
}

// deliver applies one message to the cohort's view. Batches fan out to one
// attestation per listed validator, in listed order.
func (c *Cohort) deliver(m Message) {
	switch {
	case m.Block != nil:
		c.Node.ReceiveBlock(*m.Block)
	case m.Att != nil:
		c.Node.ReceiveAttestation(*m.Att)
	case m.Batch != nil:
		for _, v := range m.Batch.Validators {
			c.Node.ReceiveAttestation(attestation.Attestation{Validator: v, Data: m.Batch.Data})
		}
	}
}
